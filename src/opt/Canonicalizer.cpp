//===- opt/Canonicalizer.cpp ------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/Canonicalizer.h"

#include "ir/ArithSemantics.h"
#include "ir/Module.h"
#include "opt/CFGUtils.h"
#include "support/Cancellation.h"
#include "support/Casting.h"

#include <deque>
#include <unordered_set>

using namespace incline;
using namespace incline::ir;
using namespace incline::opt;

CanonStats &CanonStats::operator+=(const CanonStats &Other) {
  ConstantsFolded += Other.ConstantsFolded;
  StrengthReductions += Other.StrengthReductions;
  BranchesPruned += Other.BranchesPruned;
  PhisSimplified += Other.PhisSimplified;
  TypeChecksFolded += Other.TypeChecksFolded;
  NullChecksFolded += Other.NullChecksFolded;
  Devirtualized += Other.Devirtualized;
  CastsFolded += Other.CastsFolded;
  VisitsUsed += Other.VisitsUsed;
  BudgetExhausted = BudgetExhausted || Other.BudgetExhausted;
  return *this;
}

namespace {

/// True when \p V can never be null at run time.
bool isProvablyNonNull(const Value *V) {
  if (V->hasExactType())
    return true; // Exactness is only asserted for non-null values.
  return isa<NewObjectInst, NewArrayInst, NullCheckInst>(V);
}

class CanonicalizerImpl {
public:
  CanonicalizerImpl(Function &F, const Module &M, const CanonOptions &Opts)
      : F(F), M(M), Opts(Opts) {}

  CanonStats run() {
    seedWorklist();
    while (true) {
      while (!Worklist.empty()) {
        if (++Stats.VisitsUsed > Opts.VisitBudget) {
          Stats.BudgetExhausted = true;
          return Stats;
        }
        // Cooperative cancellation point for long runs: only the wall clock
        // or a cancel request can fire here (work units are charged at pass
        // boundaries, after this run completes), so the poll is free of
        // deterministic-mode side effects.
        if (Opts.Cancel && (Stats.VisitsUsed & 2047) == 0 &&
            Opts.Cancel->expired())
          Opts.Cancel->checkpoint("canonicalize");
        Instruction *Inst = Worklist.front();
        Worklist.pop_front();
        InWorklist.erase(Inst);
        if (!Alive.count(Inst))
          continue;
        simplify(Inst);
      }
      // CFG cleanup can enable more local rewrites (e.g. phis narrowing
      // after a block loses an edge); iterate until everything settles.
      size_t CFGChanges = removeUnreachableBlocks(F);
      CFGChanges += mergeStraightLineBlocks(F);
      if (CFGChanges == 0)
        return Stats;
      seedWorklist();
    }
  }

private:
  void seedWorklist() {
    Worklist.clear();
    InWorklist.clear();
    Alive.clear();
    for (const auto &BB : F.blocks())
      for (const auto &Inst : BB->instructions())
        Alive.insert(Inst.get());
    // Deterministic order: blocks in function order.
    for (const auto &BB : F.blocks())
      for (const auto &Inst : BB->instructions())
        enqueue(Inst.get());
  }

  void enqueue(Instruction *Inst) {
    if (!Alive.count(Inst) || InWorklist.count(Inst))
      return;
    Worklist.push_back(Inst);
    InWorklist.insert(Inst);
  }

  void enqueueUsers(Value *V) {
    for (Instruction *User : V->users())
      enqueue(User);
  }

  /// Removes \p Inst (which must be use-free) from the function.
  void eraseInst(Instruction *Inst) {
    Alive.erase(Inst);
    // Operands lose a use; their users may now simplify (no-op for the
    // canonicalizer, but keeps exactness propagation flowing).
    for (Value *Op : Inst->operands())
      if (auto *OpInst = dyn_cast<Instruction>(Op))
        enqueue(OpInst);
    Inst->parent()->erase(Inst);
  }

  /// RAUWs \p Inst with \p With and erases it.
  void replaceInst(Instruction *Inst, Value *With) {
    enqueueUsers(Inst);
    Inst->replaceAllUsesWith(With);
    if (auto *WithInst = dyn_cast<Instruction>(With))
      enqueue(WithInst);
    eraseInst(Inst);
  }

  void simplify(Instruction *Inst) {
    switch (Inst->kind()) {
    case ValueKind::Phi:
      simplifyPhi(cast<PhiInst>(Inst));
      return;
    case ValueKind::BinOp:
      simplifyBinOp(cast<BinOpInst>(Inst));
      return;
    case ValueKind::UnOp:
      simplifyUnOp(cast<UnOpInst>(Inst));
      return;
    case ValueKind::Branch:
      simplifyBranch(cast<BranchInst>(Inst));
      return;
    case ValueKind::InstanceOf:
      simplifyInstanceOf(cast<InstanceOfInst>(Inst));
      return;
    case ValueKind::CheckCast:
      simplifyCheckCast(cast<CheckCastInst>(Inst));
      return;
    case ValueKind::NullCheck:
      simplifyNullCheck(cast<NullCheckInst>(Inst));
      return;
    case ValueKind::GetClassId:
      simplifyGetClassId(cast<GetClassIdInst>(Inst));
      return;
    case ValueKind::VirtualCall:
      if (Opts.EnableDevirtualization)
        devirtualize(cast<VirtualCallInst>(Inst));
      return;
    default:
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // Individual rewrites
  //===--------------------------------------------------------------------===//

  void simplifyPhi(PhiInst *Phi) {
    if (Value *Same = Phi->uniqueIncomingValue()) {
      ++Stats.PhisSimplified;
      replaceInst(Phi, Same);
      return;
    }
    // Type narrowing / exactness propagation: when every incoming value
    // shares one static object type T (a subtype of the phi's declared
    // type) and all are exact, the phi is exactly T. This is what lets
    // argument specialization flow through joins.
    if (!Phi->hasExactType() && Phi->type().isObject()) {
      bool AllExact = false;
      types::Type Common = types::Type::voidTy();
      for (size_t I = 0; I < Phi->numIncoming(); ++I) {
        Value *In = Phi->incomingValue(I);
        if (In == Phi)
          continue;
        if (!In->hasExactType() || !In->type().isObject()) {
          AllExact = false;
          break;
        }
        if (Common.isVoid()) {
          Common = In->type();
          AllExact = true;
        } else if (Common != In->type()) {
          AllExact = false;
          break;
        }
      }
      if (AllExact) {
        Phi->setType(Common);
        Phi->setExactType(true);
        enqueueUsers(Phi);
      }
    }
  }

  void simplifyBinOp(BinOpInst *Bin) {
    Value *L = Bin->lhs();
    Value *R = Bin->rhs();
    using Op = BinOpInst::Opcode;
    Op Opcode = Bin->opcode();

    // Canonical operand order: constants to the right of commutative ops.
    if (isa<Constant>(L) && !isa<Constant>(R) &&
        BinOpInst::isCommutative(Opcode)) {
      Bin->setOperand(0, R);
      Bin->setOperand(1, L);
      std::swap(L, R);
    }

    // Full constant folding.
    const auto *LInt = dyn_cast<ConstInt>(L);
    const auto *RInt = dyn_cast<ConstInt>(R);
    const auto *LBool = dyn_cast<ConstBool>(L);
    const auto *RBool = dyn_cast<ConstBool>(R);
    if (LInt && RInt) {
      if (Opts.TestOnlyMiscompileSubFold && Opcode == Op::Sub) {
        ++Stats.ConstantsFolded;
        replaceInst(Bin, F.constInt(RInt->value() - LInt->value()));
        return;
      }
      if (Bin->isComparison()) {
        ++Stats.ConstantsFolded;
        replaceInst(Bin, F.constBool(foldIntComparison(Opcode, LInt->value(),
                                                       RInt->value())));
        return;
      }
      if (std::optional<int64_t> Folded =
              foldIntBinOp(Opcode, LInt->value(), RInt->value())) {
        ++Stats.ConstantsFolded;
        replaceInst(Bin, F.constInt(*Folded));
        return;
      }
      return; // Division by zero: must trap at run time.
    }
    if (LBool && RBool) {
      if (std::optional<bool> Folded =
              foldBoolBinOp(Opcode, LBool->value(), RBool->value())) {
        ++Stats.ConstantsFolded;
        replaceInst(Bin, F.constBool(*Folded));
        return;
      }
    }
    // Null == null and friends.
    if (isa<ConstNull>(L) && isa<ConstNull>(R) &&
        (Opcode == Op::Eq || Opcode == Op::Ne)) {
      ++Stats.ConstantsFolded;
      replaceInst(Bin, F.constBool(Opcode == Op::Eq));
      return;
    }

    // x OP x identities (sound for pure SSA values of any type).
    if (L == R) {
      switch (Opcode) {
      case Op::Sub:
        ++Stats.StrengthReductions;
        replaceInst(Bin, F.constInt(0));
        return;
      case Op::And:
      case Op::Or:
        ++Stats.StrengthReductions;
        replaceInst(Bin, L);
        return;
      case Op::Xor:
        ++Stats.StrengthReductions;
        replaceInst(Bin, F.constBool(false));
        return;
      case Op::Eq:
      case Op::Le:
      case Op::Ge:
        ++Stats.StrengthReductions;
        replaceInst(Bin, F.constBool(true));
        return;
      case Op::Ne:
      case Op::Lt:
      case Op::Gt:
        ++Stats.StrengthReductions;
        replaceInst(Bin, F.constBool(false));
        return;
      default:
        break;
      }
    }

    // Identities with a constant RHS.
    if (RInt) {
      int64_t C = RInt->value();
      switch (Opcode) {
      case Op::Add:
      case Op::Sub:
      case Op::Shl:
      case Op::Shr:
        if (C == 0) {
          ++Stats.StrengthReductions;
          replaceInst(Bin, L);
          return;
        }
        break;
      case Op::Mul:
        if (C == 1) {
          ++Stats.StrengthReductions;
          replaceInst(Bin, L);
          return;
        }
        if (C == 0) {
          ++Stats.StrengthReductions;
          replaceInst(Bin, F.constInt(0));
          return;
        }
        // Strength reduction: multiply by a power of two becomes a shift.
        if (C > 1 && (C & (C - 1)) == 0) {
          int Shift = 0;
          while ((int64_t(1) << Shift) != C)
            ++Shift;
          auto Shl = std::make_unique<BinOpInst>(Op::Shl, L,
                                                 F.constInt(Shift));
          Shl->setProfileId(F.takeNextProfileId());
          Instruction *NewInst =
              Bin->parent()->insertBefore(Bin, std::move(Shl));
          ++Stats.StrengthReductions;
          Alive.insert(NewInst);
          replaceInst(Bin, NewInst);
          return;
        }
        break;
      case Op::Div:
        if (C == 1) {
          ++Stats.StrengthReductions;
          replaceInst(Bin, L);
          return;
        }
        break;
      case Op::Mod:
        if (C == 1) {
          ++Stats.StrengthReductions;
          replaceInst(Bin, F.constInt(0));
          return;
        }
        break;
      default:
        break;
      }
    }
    if (RBool) {
      switch (Opcode) {
      case Op::And:
        ++Stats.StrengthReductions;
        replaceInst(Bin, RBool->value() ? L
                                        : static_cast<Value *>(
                                              F.constBool(false)));
        return;
      case Op::Or:
        ++Stats.StrengthReductions;
        replaceInst(Bin, RBool->value()
                             ? static_cast<Value *>(F.constBool(true))
                             : L);
        return;
      case Op::Eq:
        // x == true -> x; x == false -> !x (latter left alone: a rewrite
        // to UnOp would not reduce cost).
        if (RBool->value()) {
          ++Stats.StrengthReductions;
          replaceInst(Bin, L);
          return;
        }
        break;
      default:
        break;
      }
    }
  }

  void simplifyUnOp(UnOpInst *Un) {
    Value *V = Un->operand(0);
    if (Un->opcode() == UnOpInst::Opcode::Neg) {
      if (const auto *CI = dyn_cast<ConstInt>(V)) {
        ++Stats.ConstantsFolded;
        replaceInst(Un, F.constInt(foldNeg(CI->value())));
        return;
      }
      if (auto *Inner = dyn_cast<UnOpInst>(V);
          Inner && Inner->opcode() == UnOpInst::Opcode::Neg) {
        ++Stats.StrengthReductions;
        replaceInst(Un, Inner->operand(0));
        return;
      }
      return;
    }
    // Not.
    if (const auto *CB = dyn_cast<ConstBool>(V)) {
      ++Stats.ConstantsFolded;
      replaceInst(Un, F.constBool(!CB->value()));
      return;
    }
    if (auto *Inner = dyn_cast<UnOpInst>(V);
        Inner && Inner->opcode() == UnOpInst::Opcode::Not) {
      ++Stats.StrengthReductions;
      replaceInst(Un, Inner->operand(0));
      return;
    }
  }

  void simplifyBranch(BranchInst *Br) {
    const auto *Cond = dyn_cast<ConstBool>(Br->condition());
    if (!Cond)
      return;
    BasicBlock *Source = Br->parent();
    BasicBlock *Taken = Cond->value() ? Br->trueSuccessor()
                                      : Br->falseSuccessor();
    BasicBlock *Dead = Cond->value() ? Br->falseSuccessor()
                                     : Br->trueSuccessor();
    if (Dead != Taken) {
      removePhiEntriesForEdge(*Dead, *Source);
      for (PhiInst *Phi : Dead->phis())
        enqueue(Phi);
    }
    // Erasing the branch unhooks both CFG edges; the jump restores one.
    eraseInst(Br);
    auto Jump = std::make_unique<JumpInst>(Taken);
    Jump->setProfileId(F.takeNextProfileId());
    Instruction *NewJump = Source->append(std::move(Jump));
    Alive.insert(NewJump);
    ++Stats.BranchesPruned;
  }

  void simplifyInstanceOf(InstanceOfInst *Is) {
    Value *Obj = Is->object();
    if (isa<ConstNull>(Obj) || Obj->type().isNull()) {
      ++Stats.TypeChecksFolded;
      replaceInst(Is, F.constBool(false));
      return;
    }
    if (Obj->hasExactType() && Obj->type().isObject()) {
      bool Result = M.classes().isSubclassOf(Obj->type().classId(),
                                             Is->testClassId());
      ++Stats.TypeChecksFolded;
      replaceInst(Is, F.constBool(Result));
      return;
    }
    // Non-exact but the whole subtree of the static type passes the test,
    // and the value is provably non-null: fold to true.
    if (Obj->type().isObject() && isProvablyNonNull(Obj) &&
        M.classes().isSubclassOf(Obj->type().classId(), Is->testClassId())) {
      ++Stats.TypeChecksFolded;
      replaceInst(Is, F.constBool(true));
      return;
    }
  }

  void simplifyCheckCast(CheckCastInst *Cast) {
    Value *Obj = Cast->object();
    if (isa<ConstNull>(Obj)) {
      ++Stats.CastsFolded;
      replaceInst(Cast, F.constNull());
      return;
    }
    // Upcast or identity cast always succeeds; null flows through a cast
    // unchanged, so non-nullness is not required here.
    if (Obj->type().isObject() &&
        M.classes().isSubclassOf(Obj->type().classId(),
                                 Cast->targetClassId())) {
      ++Stats.CastsFolded;
      replaceInst(Cast, Obj);
      return;
    }
  }

  void simplifyNullCheck(NullCheckInst *Check) {
    if (isProvablyNonNull(Check->object())) {
      ++Stats.NullChecksFolded;
      replaceInst(Check, Check->object());
    }
  }

  void simplifyGetClassId(GetClassIdInst *Get) {
    Value *Obj = Get->object();
    if (Obj->hasExactType() && Obj->type().isObject()) {
      ++Stats.TypeChecksFolded;
      replaceInst(Get, F.constInt(Obj->type().classId()));
    }
  }

  void devirtualize(VirtualCallInst *VCall) {
    Value *Recv = VCall->receiver();
    if (!Recv->type().isObject() || Recv->type().isNull())
      return;
    int StaticClass = Recv->type().classId();

    const types::MethodInfo *Target = nullptr;
    bool NeedsNullCheck = true;
    if (Recv->hasExactType()) {
      Target = M.classes().resolveMethod(StaticClass, VCall->methodName());
      NeedsNullCheck = !isProvablyNonNull(Recv);
    } else {
      // Class hierarchy analysis: every possible receiver class in the
      // static type's subtree dispatches to the same method.
      Target = M.classes().uniqueDispatchTarget(StaticClass,
                                                VCall->methodName());
      NeedsNullCheck = !isProvablyNonNull(Recv);
    }
    if (!Target)
      return;
    // The target body must exist in the module (it always does for code
    // produced by the frontend; be defensive for hand-built IR).
    if (!M.function(Target->QualifiedName))
      return;

    BasicBlock *BB = VCall->parent();
    Value *CheckedRecv = Recv;
    if (NeedsNullCheck) {
      auto Check = std::make_unique<NullCheckInst>(Recv);
      Check->setProfileId(F.takeNextProfileId());
      Instruction *NewCheck = BB->insertBefore(VCall, std::move(Check));
      Alive.insert(NewCheck);
      CheckedRecv = NewCheck;
    }
    std::vector<Value *> Args;
    Args.push_back(CheckedRecv);
    for (size_t I = 0; I < VCall->numArgs(); ++I)
      Args.push_back(VCall->arg(I));
    auto Call = std::make_unique<CallInst>(Target->QualifiedName, Args,
                                           VCall->type());
    Call->setProfileId(F.takeNextProfileId());
    Instruction *NewCall = BB->insertBefore(VCall, std::move(Call));
    Alive.insert(NewCall);
    ++Stats.Devirtualized;
    replaceInst(VCall, NewCall);
  }

  Function &F;
  const Module &M;
  CanonOptions Opts;
  CanonStats Stats;

  std::deque<Instruction *> Worklist;
  std::unordered_set<Instruction *> InWorklist;
  std::unordered_set<Instruction *> Alive;
};

} // namespace

CanonStats incline::opt::canonicalize(Function &F, const Module &M,
                                      const CanonOptions &Options) {
  return CanonicalizerImpl(F, M, Options).run();
}
