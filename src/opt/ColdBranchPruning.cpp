//===- opt/ColdBranchPruning.cpp -------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/ColdBranchPruning.h"

#include "ir/Dominators.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "opt/CFGUtils.h"
#include "profile/ProfileData.h"
#include "support/Casting.h"

#include <unordered_map>
#include <unordered_set>

using namespace incline;
using namespace incline::ir;
using namespace incline::opt;

namespace {

/// The baseline instructions executed at-or-after the resume point (the
/// cold target's first non-phi instruction): everything from the resume
/// onward in its block, plus every block reachable from the target's
/// successors. A captured value must have a user here — otherwise nothing
/// the baseline executes after the transfer can read it.
struct AfterSet {
  const BasicBlock *SiteBB = nullptr;
  size_t SiteIndex = 0;
  std::unordered_set<const BasicBlock *> FullBlocks;

  explicit AfterSet(const Instruction *Resume) {
    SiteBB = Resume->parent();
    SiteIndex = SiteBB->indexOf(Resume);
    std::vector<const BasicBlock *> Worklist;
    for (const BasicBlock *Succ : SiteBB->successors())
      Worklist.push_back(Succ);
    while (!Worklist.empty()) {
      const BasicBlock *BB = Worklist.back();
      Worklist.pop_back();
      if (!FullBlocks.insert(BB).second)
        continue;
      for (const BasicBlock *Succ : BB->successors())
        Worklist.push_back(Succ);
    }
  }

  bool contains(const Instruction *I) const {
    const BasicBlock *BB = I->parent();
    if (FullBlocks.count(BB))
      return true;
    return BB == SiteBB && BB->indexOf(I) >= SiteIndex;
  }
};

/// True if some baseline user of \p V executes at-or-after the resume point.
bool liveAcrossResume(const Value *V, const AfterSet &After) {
  for (const Instruction *User : V->users())
    if (After.contains(User))
      return true;
  return false;
}

/// One branch edge the collection phase approved for pruning.
struct PruneSite {
  BranchInst *Branch = nullptr;     ///< The clone-side branch.
  bool PruneTrueSide = false;       ///< Which edge becomes the trap.
  FrameState State;                 ///< Fully resolved against the baseline.
};

class ColdBranchPruningImpl {
public:
  ColdBranchPruningImpl(Function &F, const Module &M,
                        const profile::ProfileTable &Profiles,
                        const ColdBranchPruningOptions &Opts,
                        const SpeculationBlacklist *PruneBlacklist)
      : F(F), M(M), Profiles(Profiles), Opts(Opts),
        PruneBlacklist(PruneBlacklist) {}

  ColdBranchPruningStats run() {
    // Only ever rewrite a compilation clone whose baseline still exists
    // unmodified in the module — the frame states point back into it.
    Baseline = M.function(F.name());
    if (!Baseline || Baseline == &F)
      return Stats;

    std::vector<PruneSite> Sites = collectSites();
    if (Sites.empty())
      return Stats;

    // Clone-side value lookup for frame-state capture: profileId -> value
    // (ids are clone-preserved).
    for (const auto &BB : F.blocks())
      for (const auto &Inst : BB->instructions())
        if (!Inst->type().isVoid())
          CloneValues[Inst->profileId()] = Inst.get();

    for (PruneSite &Site : Sites)
      transform(Site);

    // Pruned edges may leave cold targets (and everything only they
    // reached) unreachable — exactly the slice we no longer compile.
    removeUnreachableBlocks(F);
    return Stats;
  }

private:
  //===--------------------------------------------------------------------===//
  // Collection
  //===--------------------------------------------------------------------===//

  std::vector<PruneSite> collectSites() {
    std::unordered_map<unsigned, const Instruction *> BaselineInsts;
    for (const auto &BB : Baseline->blocks())
      for (const auto &Inst : BB->instructions())
        BaselineInsts[Inst->profileId()] = Inst.get();

    const DominatorTree BDT(*Baseline);
    const profile::MethodProfile *MP = Profiles.find(F.name());

    std::vector<PruneSite> Sites;
    for (const auto &BB : F.blocks()) {
      for (const auto &Inst : BB->instructions()) {
        auto *Br = dyn_cast<BranchInst>(Inst.get());
        if (!Br || Br->trueSuccessor() == Br->falseSuccessor())
          continue;
        PruneSite Site;
        if (considerSite(Br, MP, BaselineInsts, BDT, Site))
          Sites.push_back(std::move(Site));
      }
    }
    return Sites;
  }

  bool considerSite(
      BranchInst *Br, const profile::MethodProfile *MP,
      const std::unordered_map<unsigned, const Instruction *> &BaselineInsts,
      const DominatorTree &BDT, PruneSite &Site) {
    // The baseline counterpart we deoptimize back to. Branches the clone
    // acquired with fresh ids (none today — the pass runs on the pristine
    // clone — but cheap to keep honest) have no resume point.
    auto It = BaselineInsts.find(Br->profileId());
    if (It == BaselineInsts.end())
      return false;
    const auto *BBr = dyn_cast<BranchInst>(It->second);
    if (!BBr || BBr->trueSuccessor() == BBr->falseSuccessor() ||
        !BDT.isReachable(BBr->parent()))
      return false;

    // Decide which side is cold. The chaos hook may force a prune with no
    // profile at all — output-neutral by construction, the trap recovers —
    // in which case the less-taken side (ties: the false side) is pruned.
    double TrueProb = 0.5;
    uint64_t Total = 0;
    if (MP) {
      auto BIt = MP->Branches.find(Br->profileId());
      if (BIt != MP->Branches.end()) {
        TrueProb = BIt->second.trueProbability();
        Total = BIt->second.total();
      }
    }
    bool PruneTrue;
    if (Opts.ForceColdBranch &&
        Opts.ForceColdBranch(F.name(), Br->profileId())) {
      PruneTrue = TrueProb < 0.5;
    } else {
      if (Total < Opts.MinSamples)
        return false;
      double ColdProb = TrueProb <= 1.0 - TrueProb ? TrueProb : 1.0 - TrueProb;
      if (ColdProb > Opts.MaxProbability || ColdProb >= 1.0 - ColdProb)
        return false;
      PruneTrue = TrueProb < 0.5;
    }

    const BasicBlock *BaselineTarget =
        PruneTrue ? BBr->trueSuccessor() : BBr->falseSuccessor();
    if (PruneBlacklist &&
        PruneBlacklist->contains(F.name(), BaselineTarget->id())) {
      ++Stats.BlacklistSkipped;
      return false;
    }

    if (!buildFrameState(BaselineTarget, BDT, Site.State))
      return false;
    Site.Branch = Br;
    Site.PruneTrueSide = PruneTrue;
    return true;
  }

  /// Captures the baseline values a resume at the entry of \p Target needs:
  /// every argument or instruction result that dominates the resume *and*
  /// is used at-or-after it. The target's own phis land here too (they sit
  /// before the resume in its block): the interpreter skips phi evaluation
  /// on a mid-block resume, so their values travel through the slots —
  /// selected, on the capture side, for the pruned edge.
  bool buildFrameState(const BasicBlock *Target, const DominatorTree &BDT,
                       FrameState &State) {
    // The resume point: the target's first non-phi instruction (always
    // exists — every block has a terminator).
    const Instruction *Resume = nullptr;
    for (const auto &Inst : Target->instructions())
      if (!isa<PhiInst>(Inst.get())) {
        Resume = Inst.get();
        break;
      }
    if (!Resume)
      return false;

    const AfterSet After(Resume);
    State.BaselineSymbol = Baseline->name();
    State.BaselineBlockId = Target->id();
    State.ResumePoint = Resume->profileId();
    State.Slots.clear();

    for (size_t I = 0; I < Baseline->numParams(); ++I)
      if (liveAcrossResume(Baseline->arg(I), After))
        State.Slots.push_back({FrameStateSlot::Target::Argument,
                               static_cast<unsigned>(I)});

    // Any def strictly dominating the target block dominates every one of
    // its predecessors — including the branch block the trap hangs off —
    // so each captured slot has a clone-side value available at the trap.
    for (const auto &BB : Baseline->blocks()) {
      bool DominatesSite =
          BB.get() != Target && BDT.dominates(BB.get(), Target);
      for (const auto &Inst : BB->instructions()) {
        if (Inst->type().isVoid())
          continue;
        bool Dominates =
            DominatesSite || (BB.get() == Target &&
                              BB->indexOf(Inst.get()) < After.SiteIndex);
        if (Dominates && liveAcrossResume(Inst.get(), After))
          State.Slots.push_back(
              {FrameStateSlot::Target::Instruction, Inst->profileId()});
      }
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Transformation
  //===--------------------------------------------------------------------===//

  void transform(PruneSite &Site) {
    BranchInst *Br = Site.Branch;
    BasicBlock *Pre = Br->parent();
    BasicBlock *ColdTarget =
        Site.PruneTrueSide ? Br->trueSuccessor() : Br->falseSuccessor();

    // Clone-side phi lookup for the cold target: a captured slot naming one
    // of its phis materializes the value the phi would have carried along
    // the pruned edge (the phi itself lives past the trap and does not
    // dominate it).
    std::unordered_map<unsigned, PhiInst *> TargetPhis;
    for (PhiInst *Phi : ColdTarget->phis())
      TargetPhis[Phi->profileId()] = Phi;

    std::vector<Value *> Captured;
    Captured.reserve(Site.State.Slots.size());
    for (const FrameStateSlot &Slot : Site.State.Slots) {
      if (Slot.Kind == FrameStateSlot::Target::Argument) {
        Captured.push_back(F.arg(Slot.BaselineId));
        continue;
      }
      auto PhiIt = TargetPhis.find(Slot.BaselineId);
      if (PhiIt != TargetPhis.end()) {
        Captured.push_back(PhiIt->second->incomingValueFor(Pre));
        continue;
      }
      Captured.push_back(CloneValues.at(Slot.BaselineId));
    }

    BasicBlock *TrapBB = F.addBlock("prune.trap");
    IRBuilder B(F, TrapBB);
    B.deopt(DeoptInst::ColdBranchReason, std::move(Site.State), Captured);

    replaceSuccessor(Br, ColdTarget, TrapBB);
    removePhiEntriesForEdge(*ColdTarget, *Pre);
    ++Stats.BranchesPruned;
  }

  Function &F;
  const Module &M;
  const profile::ProfileTable &Profiles;
  const ColdBranchPruningOptions &Opts;
  const SpeculationBlacklist *PruneBlacklist;
  const Function *Baseline = nullptr;
  std::unordered_map<unsigned, Value *> CloneValues;
  ColdBranchPruningStats Stats;
};

} // namespace

ColdBranchPruningStats
incline::opt::pruneColdBranches(Function &F, const Module &M,
                                const profile::ProfileTable &Profiles,
                                const ColdBranchPruningOptions &Opts,
                                const SpeculationBlacklist *PruneBlacklist) {
  return ColdBranchPruningImpl(F, M, Profiles, Opts, PruneBlacklist).run();
}

PreservedAnalyses ColdBranchPruningPass::run(Function &F, const Module &M,
                                             AnalysisManager &AM) {
  const profile::ProfileTable *Profiles = AM.profiles();
  if (!Profiles)
    return PreservedAnalyses::all();
  ColdBranchPruningStats Run =
      pruneColdBranches(F, M, *Profiles, Opts, PruneBlacklist);
  if (StatsSink) {
    StatsSink->BranchesPruned += Run.BranchesPruned;
    StatsSink->BlacklistSkipped += Run.BlacklistSkipped;
  }
  return PreservedAnalyses::allIf(Run.BranchesPruned == 0);
}
