//===- opt/Pass.h - Function passes, pass manager, instrumentation ---------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified pass framework. A `FunctionPass` transforms one function and
/// reports which cached analyses survived; a `FunctionPassManager` runs an
/// ordered list of passes over a function, wiring every run through:
///
///  * the shared `AnalysisManager` (passes consume cached dominators /
///    loops / block frequencies instead of rebuilding them),
///  * invalidation (the manager drops whatever a pass reports clobbered),
///  * the per-pass observer hook the fuzzing oracle verifies IR under, and
///  * the `PassInstrumentation` registry (wall time, runs, IR-size delta,
///    analysis cache hits/misses), which makes compile time a first-class
///    observable metric alongside simulated cycles.
///
/// Every layer that runs passes — the standard `PassPipeline` bundle, the
/// inliner's round-optimization block, the deep-inlining trials, and the
/// fuzz oracle's pipeline configurations — goes through this interface, so
/// one observer sees every transformation and one registry accounts for
/// all compile time.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_OPT_PASS_H
#define INCLINE_OPT_PASS_H

#include "opt/Analysis.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace incline::ir {
class Function;
class Module;
} // namespace incline::ir

namespace incline::support {
class CancellationToken;
} // namespace incline::support

namespace incline::opt {

class ModuleReachability;
class SpeculationBlacklist;

/// Called after each individual pass with the pass's name and the function
/// it just transformed (the fuzzing oracle verifies the IR here).
using PassObserver =
    std::function<void(const std::string &PassName, ir::Function &F)>;

/// One transformation over a single function.
class FunctionPass {
public:
  virtual ~FunctionPass();

  /// Display/registry name ("canonicalize", "gvn", ...). Stable across
  /// runs: bisection and instrumentation key on it.
  virtual std::string_view name() const = 0;

  /// Transforms \p F, obtaining any analyses it needs from \p AM, and
  /// reports which cached analyses are still valid afterwards.
  virtual PreservedAnalyses run(ir::Function &F, const ir::Module &M,
                                AnalysisManager &AM) = 0;
};

/// Accumulated per-pass metrics.
struct PassMetrics {
  uint64_t Runs = 0;
  uint64_t Nanos = 0;       ///< Wall time spent inside the pass.
  uint64_t IRRemoved = 0;   ///< Sum of per-run instruction-count decreases.
  uint64_t IRAdded = 0;     ///< Sum of per-run instruction-count increases.
  uint64_t CacheHits = 0;   ///< Analysis cache hits during the pass's runs.
  uint64_t CacheMisses = 0; ///< Analysis computations during the pass's runs.

  PassMetrics &operator+=(const PassMetrics &Other);
};

/// Registry of per-pass metrics. The pass manager records into the
/// process-wide `global()` registry on every run (plus an optional extra
/// sink), so `minioo --print-pass-stats` and the compile-time bench report
/// whatever actually ran.
///
/// Thread-safe: background compile workers record into `global()`
/// concurrently with the mutator, so every accessor synchronizes on an
/// internal mutex. Reads return snapshots by value — there is no way to
/// observe the metrics map mid-update.
class PassInstrumentation {
public:
  void record(std::string_view PassName, const PassMetrics &Delta);

  /// Snapshot of the per-pass metrics (copied under the lock).
  std::map<std::string, PassMetrics, std::less<>> passes() const;
  PassMetrics totals() const;
  void reset();
  bool empty() const;

  /// Merges this registry's metrics into \p Other.
  void mergeInto(PassInstrumentation &Other) const;

  /// Formatted table: one row per pass plus a totals row.
  std::string report() const;

  /// The process-wide registry.
  static PassInstrumentation &global();

private:
  mutable std::mutex Lock;
  std::map<std::string, PassMetrics, std::less<>> Metrics;
};

/// The pass-execution context a compilation session threads through every
/// layer that runs passes outside the standard bundle (inliner rounds,
/// deep-inlining trials, baseline compilers). All fields optional.
struct PassContext {
  AnalysisManager *AM = nullptr;       ///< Shared analysis cache.
  PassObserver Observer;               ///< After-each-pass hook.
  PassInstrumentation *Instr = nullptr; ///< Extra metrics sink.
  /// Callsites speculative devirtualization must leave alone (failed too
  /// often at run time). Owned by the JIT runtime; background compilations
  /// point this at the snapshot carried in their CompileTask.
  const SpeculationBlacklist *Blacklist = nullptr;
  /// Branch-edge prunes cold-branch pruning must leave alone (their trap
  /// fired at run time), keyed (method, cold-target baseline block id).
  /// Same ownership/snapshot discipline as Blacklist.
  const SpeculationBlacklist *PruneBlacklist = nullptr;
  /// Chaos hook forcing cold-branch prune decisions (null = off); must be a
  /// pure function of its arguments so concurrent compilations of the same
  /// method decide identically. See opt/ColdBranchPruning.h.
  std::function<bool(std::string_view Method, unsigned BranchProfileId)>
      ForceColdBranch;
  /// Reachable-method set for tree shaking (null = shake nothing). Owned by
  /// the JIT runtime; immutable after construction, so workers share it
  /// by-const-pointer. See opt/ModuleReachability.h.
  const ModuleReachability *Reachable = nullptr;
  /// The compilation's budget/cancel token (DESIGN.md §14). When set, every
  /// pass execution checkpoints before running (throwing DeadlineExceeded /
  /// ResourceExhausted out of the compile) and charges deterministic work
  /// units from its IR delta afterwards. Null = unsupervised.
  support::CancellationToken *Cancel = nullptr;
  /// Graceful-degradation rung this compilation runs at (DESIGN.md §14):
  /// 0 = full optimization, 1 = no speculation, 2 = no inlining (baseline).
  /// Compilers that support degradation read this; others ignore it.
  unsigned DegradeRung = 0;
};

/// Runs an ordered list of function passes with caching, invalidation,
/// observation, and instrumentation.
class FunctionPassManager {
public:
  explicit FunctionPassManager(std::string Name = "pipeline")
      : Name(std::move(Name)) {}

  /// Appends \p Pass; returns it for stats-sink wiring.
  FunctionPass &addPass(std::unique_ptr<FunctionPass> Pass);

  template <typename PassT, typename... ArgTs>
  PassT &emplacePass(ArgTs &&...Args) {
    return static_cast<PassT &>(
        addPass(std::make_unique<PassT>(std::forward<ArgTs>(Args)...)));
  }

  size_t size() const { return Passes.size(); }
  const std::vector<std::string> &passNames() const { return Names; }

  void setObserver(PassObserver Obs) { Observer = std::move(Obs); }
  /// Extra per-pass metrics sink besides the global registry (null = none).
  void setInstrumentation(PassInstrumentation *Sink) { Instr = Sink; }
  /// Budget/cancel token checkpointed and charged around every pass run
  /// (null = unsupervised).
  void setCancellation(support::CancellationToken *Tok) { Cancel = Tok; }

  /// Runs every pass on \p F in order.
  void run(ir::Function &F, const ir::Module &M, AnalysisManager &AM);

  /// Runs only the first \p NumPasses passes (0 = none, >= size() = all) —
  /// the replay primitive pass bisection grows prefixes with.
  void runPrefix(ir::Function &F, const ir::Module &M, AnalysisManager &AM,
                 size_t NumPasses);

private:
  std::string Name;
  std::vector<std::unique_ptr<FunctionPass>> Passes;
  std::vector<std::string> Names;
  PassObserver Observer;
  PassInstrumentation *Instr = nullptr;
  support::CancellationToken *Cancel = nullptr;
};

/// Runs one pass under \p Ctx — the shared single-pass entry point for
/// layers with imperative pass sequences (the inliner's round-optimization
/// block and deep-inlining trials). Uses Ctx.AM when set (a run-local
/// manager otherwise), applies invalidation, records instrumentation, and
/// fires Ctx.Observer, exactly like a one-pass FunctionPassManager.
void runPass(FunctionPass &Pass, ir::Function &F, const ir::Module &M,
             const PassContext &Ctx);

} // namespace incline::opt

#endif // INCLINE_OPT_PASS_H
