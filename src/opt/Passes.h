//===- opt/Passes.h - Concrete FunctionPass adapters -----------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five mid-end transformations as `FunctionPass` objects. The adapters
/// own the analysis discipline so the underlying transforms stay plain
/// functions:
///
///  * analyses come from the AnalysisManager, never built inside a pass;
///  * preservation is reported honestly — passes that can edit the CFG
///    compare the function's CFG epoch before/after instead of guessing;
///  * per-run statistics flow into optional caller-owned sinks, so the
///    pipeline's `PipelineStats` and the inliner's round accounting keep
///    their existing shapes.
///
/// `BudgetPool` models the bundle-wide canonicalizer visit budget: each
/// canonicalization run draws from the pool and pays back what it actually
/// used, so the second run inherits the first run's unspent remainder.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_OPT_PASSES_H
#define INCLINE_OPT_PASSES_H

#include "opt/Canonicalizer.h"
#include "opt/DCE.h"
#include "opt/LoopPeeling.h"
#include "opt/Pass.h"
#include "opt/ReadWriteElimination.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace incline::opt {

/// A shared canonicalizer visit budget, drawn down across the runs of one
/// pipeline. Draws are halves of the *remaining* pool (or everything, for
/// the last run), so an early run that converges cheaply leaves its unspent
/// visits to later runs instead of stranding them.
class BudgetPool {
public:
  explicit BudgetPool(uint64_t Budget) : Remaining(Budget) {}

  uint64_t remaining() const { return Remaining; }

  /// Budget for the next run: half the pool, or all of it when
  /// \p TakeAllRemaining.
  uint64_t draw(bool TakeAllRemaining) const {
    return TakeAllRemaining ? Remaining : Remaining / 2;
  }

  /// Pays \p Used visits out of the pool (saturating).
  void spend(uint64_t Used) { Remaining -= Used < Remaining ? Used : Remaining; }

private:
  uint64_t Remaining;
};

/// Canonicalization as a pass. The display name is configurable because the
/// standard bundle runs two instances ("canonicalize", "canonicalize-2")
/// and bisection keys on the names.
class CanonicalizePass : public FunctionPass {
public:
  explicit CanonicalizePass(CanonOptions Opts,
                            std::string Name = "canonicalize")
      : Opts(Opts), PassName(std::move(Name)) {}

  /// Accumulates each run's CanonStats into \p Sink (null = drop).
  void setStatsSink(CanonStats *Sink) { StatsSink = Sink; }

  /// Draws the visit budget from \p Pool instead of Opts.VisitBudget; with
  /// \p TakeAllRemaining the run gets the whole remainder (last draw).
  void setBudgetPool(BudgetPool *Pool, bool TakeAllRemaining) {
    this->Pool = Pool;
    this->TakeAllRemaining = TakeAllRemaining;
  }

  std::string_view name() const override { return PassName; }
  PreservedAnalyses run(ir::Function &F, const ir::Module &M,
                        AnalysisManager &AM) override;

private:
  CanonOptions Opts;
  std::string PassName;
  CanonStats *StatsSink = nullptr;
  BudgetPool *Pool = nullptr;
  bool TakeAllRemaining = false;
};

/// Global value numbering as a pass: consumes cached dominators, never
/// touches the CFG, so every analysis survives.
class GVNPass : public FunctionPass {
public:
  /// Accumulates the eliminated-instruction count into \p Sink.
  void setStatsSink(size_t *Sink) { StatsSink = Sink; }

  std::string_view name() const override { return "gvn"; }
  PreservedAnalyses run(ir::Function &F, const ir::Module &M,
                        AnalysisManager &AM) override;

private:
  size_t *StatsSink = nullptr;
};

/// Read-write elimination as a pass: block-local, CFG untouched, all
/// analyses preserved.
class RWEPass : public FunctionPass {
public:
  void setStatsSink(RWEStats *Sink) { StatsSink = Sink; }

  std::string_view name() const override { return "rwe"; }
  PreservedAnalyses run(ir::Function &F, const ir::Module &M,
                        AnalysisManager &AM) override;

private:
  RWEStats *StatsSink = nullptr;
};

/// Dead-code elimination as a pass. Removes unreachable blocks, so
/// preservation is decided by the CFG epoch.
class DCEPass : public FunctionPass {
public:
  void setStatsSink(DCEStats *Sink) { StatsSink = Sink; }

  std::string_view name() const override { return "dce"; }
  PreservedAnalyses run(ir::Function &F, const ir::Module &M,
                        AnalysisManager &AM) override;

private:
  DCEStats *StatsSink = nullptr;
};

/// First-iteration loop peeling as a pass: consumes cached dominators and
/// loops; peeling rewrites the CFG, so preservation is epoch-decided.
class LoopPeelPass : public FunctionPass {
public:
  explicit LoopPeelPass(PeelOptions Opts = PeelOptions()) : Opts(Opts) {}

  void setStatsSink(size_t *Sink) { StatsSink = Sink; }

  std::string_view name() const override { return "loop-peel"; }
  PreservedAnalyses run(ir::Function &F, const ir::Module &M,
                        AnalysisManager &AM) override;

private:
  PeelOptions Opts;
  size_t *StatsSink = nullptr;
};

} // namespace incline::opt

#endif // INCLINE_OPT_PASSES_H
