//===- opt/Analysis.cpp ------------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/Analysis.h"

#include "ir/Function.h"
#include "profile/BlockFrequency.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>

using namespace incline;
using namespace incline::opt;

std::string_view incline::opt::analysisKindName(AnalysisKind Kind) {
  switch (Kind) {
  case AnalysisKind::Dominators:
    return "dominators";
  case AnalysisKind::Loops:
    return "loops";
  case AnalysisKind::BlockFrequencies:
    return "block-frequencies";
  }
  return "unknown";
}

namespace {

// Atomic: compile worker threads consult the flag while the driver may
// still be parsing options on the main thread.
std::atomic<bool> VerifyCachedAnalyses{false};

/// Structural equality of two dominator trees over the same function: same
/// reachable set and the same immediate dominator for every reachable block.
bool equivalentDominators(const ir::Function &F, const ir::DominatorTree &A,
                          const ir::DominatorTree &B) {
  for (const auto &BB : F.blocks()) {
    if (A.isReachable(BB.get()) != B.isReachable(BB.get()))
      return false;
    if (A.idom(BB.get()) != B.idom(BB.get()))
      return false;
  }
  return true;
}

/// Structural equality of two loop forests: same headers, and per header
/// the same block set, latch count, and depth.
bool equivalentLoops(const ir::LoopInfo &A, const ir::LoopInfo &B) {
  if (A.loops().size() != B.loops().size())
    return false;
  for (const auto &LA : A.loops()) {
    const ir::Loop *Match = nullptr;
    for (const auto &LB : B.loops())
      if (LB->Header == LA->Header) {
        Match = LB.get();
        break;
      }
    if (!Match || Match->Blocks != LA->Blocks ||
        Match->Latches.size() != LA->Latches.size() ||
        Match->Depth != LA->Depth)
      return false;
  }
  return true;
}

bool equivalentFrequencies(const BlockFrequencyResult &A,
                           const BlockFrequencyResult &B) {
  if (A.Frequencies.size() != B.Frequencies.size())
    return false;
  for (const auto &[BB, Freq] : A.Frequencies) {
    auto It = B.Frequencies.find(BB);
    if (It == B.Frequencies.end())
      return false;
    double Scale = std::max({std::fabs(Freq), std::fabs(It->second), 1.0});
    if (std::fabs(Freq - It->second) > 1e-9 * Scale)
      return false;
  }
  return true;
}

} // namespace

void incline::opt::setVerifyCachedAnalyses(bool Enabled) {
  VerifyCachedAnalyses = Enabled;
}

bool incline::opt::verifyCachedAnalysesEnabled() {
  return VerifyCachedAnalyses;
}

AnalysisManager::FunctionEntry &
AnalysisManager::freshEntry(const ir::Function &F) {
  FunctionEntry &Entry = Cache[F.uniqueId()];
  if (Entry.Epoch != F.cfgEpoch()) {
    // The CFG moved under the cache: a pass either reported the change (and
    // the entry is already empty) or mutated the CFG while claiming
    // preservation — the epoch safety net catches the latter.
    if (Entry.DT || Entry.LI || Entry.BF)
      ++Stats.StaleEpoch;
    Entry.DT.reset();
    Entry.LI.reset();
    Entry.BF.reset();
    Entry.Epoch = F.cfgEpoch();
  }
  return Entry;
}

const ir::DominatorTree &AnalysisManager::dominators(const ir::Function &F) {
  FunctionEntry &Entry = freshEntry(F);
  if (Entry.DT) {
    ++Stats.Hits;
    if (VerifyCachedAnalyses) {
      ++Stats.Verified;
      ir::DominatorTree Fresh(F);
      if (!equivalentDominators(F, *Entry.DT, Fresh))
        INCLINE_FATAL("cached DominatorTree for '" + F.name() +
                      "' disagrees with a fresh computation (preservation "
                      "contract or CFG-epoch instrumentation bug)");
    }
    return *Entry.DT;
  }
  ++Stats.Misses;
  Entry.DT = std::make_unique<ir::DominatorTree>(F);
  return *Entry.DT;
}

const ir::LoopInfo &AnalysisManager::loops(const ir::Function &F) {
  // Resolve dominators first: the call may advance the entry's epoch and
  // must count its own hit/miss.
  const ir::DominatorTree &DT = dominators(F);
  FunctionEntry &Entry = freshEntry(F);
  if (Entry.LI) {
    ++Stats.Hits;
    if (VerifyCachedAnalyses) {
      ++Stats.Verified;
      ir::LoopInfo Fresh(F, DT);
      if (!equivalentLoops(*Entry.LI, Fresh))
        INCLINE_FATAL("cached LoopInfo for '" + F.name() +
                      "' disagrees with a fresh computation (preservation "
                      "contract or CFG-epoch instrumentation bug)");
    }
    return *Entry.LI;
  }
  ++Stats.Misses;
  Entry.LI = std::make_unique<ir::LoopInfo>(F, DT);
  return *Entry.LI;
}

const BlockFrequencyResult &
AnalysisManager::blockFrequencies(const ir::Function &F,
                                  const std::string &ProfileName) {
  const std::string &Name = ProfileName.empty() ? F.name() : ProfileName;
  FunctionEntry &Entry = freshEntry(F);
  if (Entry.BF && Entry.BF->ProfileName == Name) {
    ++Stats.Hits;
    if (VerifyCachedAnalyses) {
      ++Stats.Verified;
      BlockFrequencyResult Fresh;
      Fresh.ProfileName = Name;
      Fresh.Frequencies = profile::computeBlockFrequencies(F, Profiles, Name);
      if (!equivalentFrequencies(*Entry.BF, Fresh))
        INCLINE_FATAL("cached block frequencies for '" + F.name() +
                      "' disagree with a fresh computation (preservation "
                      "contract or CFG-epoch instrumentation bug)");
    }
    return *Entry.BF;
  }
  ++Stats.Misses;
  Entry.BF = std::make_unique<BlockFrequencyResult>();
  Entry.BF->ProfileName = Name;
  Entry.BF->Frequencies = profile::computeBlockFrequencies(F, Profiles, Name);
  return *Entry.BF;
}

void AnalysisManager::invalidate(const ir::Function &F,
                                 const PreservedAnalyses &PA) {
  if (PA.areAllPreserved())
    return;
  auto It = Cache.find(F.uniqueId());
  if (It == Cache.end())
    return;
  FunctionEntry &Entry = It->second;
  if (!PA.isPreserved(AnalysisKind::Dominators) && Entry.DT) {
    Entry.DT.reset();
    ++Stats.Invalidated;
  }
  if (!PA.isPreserved(AnalysisKind::Loops) && Entry.LI) {
    Entry.LI.reset();
    ++Stats.Invalidated;
  }
  if (!PA.isPreserved(AnalysisKind::BlockFrequencies) && Entry.BF) {
    Entry.BF.reset();
    ++Stats.Invalidated;
  }
}

void AnalysisManager::forget(const ir::Function &F) {
  Cache.erase(F.uniqueId());
}

void AnalysisManager::clear() { Cache.clear(); }

bool AnalysisManager::isCached(const ir::Function &F,
                               AnalysisKind Kind) const {
  auto It = Cache.find(F.uniqueId());
  if (It == Cache.end() || It->second.Epoch != F.cfgEpoch())
    return false;
  switch (Kind) {
  case AnalysisKind::Dominators:
    return It->second.DT != nullptr;
  case AnalysisKind::Loops:
    return It->second.LI != nullptr;
  case AnalysisKind::BlockFrequencies:
    return It->second.BF != nullptr;
  }
  return false;
}
