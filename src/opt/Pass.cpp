//===- opt/Pass.cpp ----------------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "ir/Function.h"
#include "support/Cancellation.h"
#include "support/StringUtils.h"

#include <chrono>

using namespace incline;
using namespace incline::opt;

FunctionPass::~FunctionPass() = default;

PassMetrics &PassMetrics::operator+=(const PassMetrics &Other) {
  Runs += Other.Runs;
  Nanos += Other.Nanos;
  IRRemoved += Other.IRRemoved;
  IRAdded += Other.IRAdded;
  CacheHits += Other.CacheHits;
  CacheMisses += Other.CacheMisses;
  return *this;
}

void PassInstrumentation::record(std::string_view PassName,
                                 const PassMetrics &Delta) {
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = Metrics.find(PassName);
  if (It == Metrics.end())
    It = Metrics.emplace(std::string(PassName), PassMetrics()).first;
  It->second += Delta;
}

std::map<std::string, PassMetrics, std::less<>>
PassInstrumentation::passes() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Metrics;
}

PassMetrics PassInstrumentation::totals() const {
  std::lock_guard<std::mutex> Guard(Lock);
  PassMetrics Total;
  for (const auto &[Name, M] : Metrics)
    Total += M;
  return Total;
}

void PassInstrumentation::reset() {
  std::lock_guard<std::mutex> Guard(Lock);
  Metrics.clear();
}

bool PassInstrumentation::empty() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Metrics.empty();
}

void PassInstrumentation::mergeInto(PassInstrumentation &Other) const {
  // Snapshot first: locking both registries at once risks deadlock if two
  // threads merge in opposite directions.
  for (const auto &[Name, M] : passes())
    Other.record(Name, M);
}

std::string PassInstrumentation::report() const {
  std::string Out = formatString(
      "%-16s %10s %12s %12s %12s %10s\n", "pass", "runs", "time(ms)",
      "ir-removed", "ir-added", "hit-rate");
  auto Row = [&](const std::string &Name, const PassMetrics &M) {
    uint64_t Lookups = M.CacheHits + M.CacheMisses;
    std::string HitRate =
        Lookups == 0
            ? std::string("-")
            : formatString("%.0f%%", 100.0 * static_cast<double>(M.CacheHits) /
                                         static_cast<double>(Lookups));
    Out += formatString(
        "%-16s %10llu %12.3f %12llu %12llu %10s\n", Name.c_str(),
        static_cast<unsigned long long>(M.Runs),
        static_cast<double>(M.Nanos) / 1e6,
        static_cast<unsigned long long>(M.IRRemoved),
        static_cast<unsigned long long>(M.IRAdded), HitRate.c_str());
  };
  PassMetrics Total;
  for (const auto &[Name, M] : passes()) {
    Row(Name, M);
    Total += M;
  }
  Row("TOTAL", Total);
  return Out;
}

PassInstrumentation &PassInstrumentation::global() {
  static PassInstrumentation Registry;
  return Registry;
}

namespace {

/// Shared per-pass execution: timing, run, invalidation, metrics, observer.
void executePass(FunctionPass &Pass, ir::Function &F, const ir::Module &M,
                 AnalysisManager &AM, const PassObserver &Observer,
                 PassInstrumentation *ExtraSink,
                 support::CancellationToken *Cancel) {
  // Supervised compiles checkpoint *before* starting new work: an expired
  // budget unwinds here, before this pass mutates anything, which is what
  // keeps partial IR from escaping a DeadlineExceeded.
  if (Cancel)
    Cancel->checkpoint(Pass.name());
  size_t SizeBefore = F.instructionCount();
  AnalysisCacheStats CacheBefore = AM.stats();
  auto T0 = std::chrono::steady_clock::now();

  PreservedAnalyses PA = Pass.run(F, M, AM);
  AM.invalidate(F, PA);

  auto T1 = std::chrono::steady_clock::now();
  size_t SizeAfter = F.instructionCount();
  const AnalysisCacheStats &CacheAfter = AM.stats();

  PassMetrics Delta;
  Delta.Runs = 1;
  Delta.Nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0).count());
  if (SizeAfter < SizeBefore)
    Delta.IRRemoved = SizeBefore - SizeAfter;
  else
    Delta.IRAdded = SizeAfter - SizeBefore;
  Delta.CacheHits = CacheAfter.Hits - CacheBefore.Hits;
  Delta.CacheMisses = CacheAfter.Misses - CacheBefore.Misses;

  PassInstrumentation::global().record(Pass.name(), Delta);
  if (ExtraSink)
    ExtraSink->record(Pass.name(), Delta);

  // Charge deterministic work units from the IR delta — a pure function of
  // what the pass did, so the charge stream (and therefore the point where
  // a unit deadline trips) is identical across sync / async / deterministic
  // modes and across trial-cache hit vs miss (replayTrialMetrics re-charges
  // the recorded deltas). Peak size feeds the node quota.
  if (Cancel) {
    Cancel->charge(support::CancellationToken::passRunUnits(Delta.IRAdded,
                                                            Delta.IRRemoved));
    Cancel->noteNodes(SizeAfter);
  }

  if (Observer)
    Observer(std::string(Pass.name()), F);
}

} // namespace

FunctionPass &FunctionPassManager::addPass(std::unique_ptr<FunctionPass> Pass) {
  Names.emplace_back(Pass->name());
  Passes.push_back(std::move(Pass));
  return *Passes.back();
}

void FunctionPassManager::run(ir::Function &F, const ir::Module &M,
                              AnalysisManager &AM) {
  runPrefix(F, M, AM, Passes.size());
}

void FunctionPassManager::runPrefix(ir::Function &F, const ir::Module &M,
                                    AnalysisManager &AM, size_t NumPasses) {
  for (size_t I = 0; I < Passes.size() && I < NumPasses; ++I)
    executePass(*Passes[I], F, M, AM, Observer, Instr, Cancel);
}

void incline::opt::runPass(FunctionPass &Pass, ir::Function &F,
                           const ir::Module &M, const PassContext &Ctx) {
  if (Ctx.AM) {
    executePass(Pass, F, M, *Ctx.AM, Ctx.Observer, Ctx.Instr, Ctx.Cancel);
    return;
  }
  AnalysisManager LocalAM;
  executePass(Pass, F, M, LocalAM, Ctx.Observer, Ctx.Instr, Ctx.Cancel);
}
