//===- opt/PassPipeline.cpp --------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/PassPipeline.h"

#include "ir/Function.h"
#include "opt/GVN.h"

using namespace incline;
using namespace incline::opt;

namespace {

/// One named step of the standard bundle.
struct PipelineStep {
  std::string Name;
  void (*Run)(ir::Function &, const ir::Module &, const PipelineOptions &,
              PipelineStats &);
};

const std::vector<PipelineStep> &steps() {
  static const std::vector<PipelineStep> Steps = {
      {"canonicalize",
       [](ir::Function &F, const ir::Module &M, const PipelineOptions &O,
          PipelineStats &S) {
         CanonOptions Canon = O.Canon;
         Canon.VisitBudget = O.VisitBudget / 2;
         S.Canon += canonicalize(F, M, Canon);
       }},
      {"gvn",
       [](ir::Function &F, const ir::Module &, const PipelineOptions &,
          PipelineStats &S) { S.GVNEliminated = runGVN(F); }},
      {"rwe",
       [](ir::Function &F, const ir::Module &, const PipelineOptions &,
          PipelineStats &S) { S.RWE = eliminateReadsWrites(F); }},
      // RWE-forwarded values can expose new exact types: canonicalize again.
      {"canonicalize-2",
       [](ir::Function &F, const ir::Module &M, const PipelineOptions &O,
          PipelineStats &S) {
         CanonOptions Canon = O.Canon;
         Canon.VisitBudget = O.VisitBudget / 2;
         S.Canon += canonicalize(F, M, Canon);
       }},
      {"dce",
       [](ir::Function &F, const ir::Module &, const PipelineOptions &,
          PipelineStats &S) { S.DCE = eliminateDeadCode(F); }},
  };
  return Steps;
}

} // namespace

const std::vector<std::string> &incline::opt::pipelinePassNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> N;
    for (const PipelineStep &Step : steps())
      N.push_back(Step.Name);
    return N;
  }();
  return Names;
}

PipelineStats incline::opt::runPipelinePrefix(ir::Function &F,
                                              const ir::Module &M,
                                              size_t NumPasses,
                                              const PipelineOptions &Options) {
  PipelineStats Stats;
  const std::vector<PipelineStep> &Steps = steps();
  for (size_t I = 0; I < Steps.size() && I < NumPasses; ++I) {
    Steps[I].Run(F, M, Options, Stats);
    if (Options.Observer)
      Options.Observer(Steps[I].Name, F);
  }
  return Stats;
}

PipelineStats incline::opt::runOptimizationPipeline(
    ir::Function &F, const ir::Module &M, const PipelineOptions &Options) {
  return runPipelinePrefix(F, M, steps().size(), Options);
}

PipelineStats incline::opt::runOptimizationPipeline(ir::Function &F,
                                                    const ir::Module &M,
                                                    uint64_t VisitBudget) {
  PipelineOptions Options;
  Options.VisitBudget = VisitBudget;
  return runOptimizationPipeline(F, M, Options);
}
