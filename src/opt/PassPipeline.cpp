//===- opt/PassPipeline.cpp --------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/PassPipeline.h"

#include "ir/Function.h"
#include "opt/Passes.h"

using namespace incline;
using namespace incline::opt;

namespace {

/// Builds the standard five-pass bundle wired to \p Stats and \p Pool.
/// A fresh manager per run: the stats sinks and budget pool are run-local.
FunctionPassManager buildPipeline(const PipelineOptions &Options,
                                  PipelineStats &Stats, BudgetPool &Pool) {
  FunctionPassManager FPM("standard-bundle");

  // The canonicalizer polls the token mid-worklist (wall clock / cancel
  // only; work units are charged at pass granularity) so a runaway
  // canonicalization cannot outlive its deadline by a whole pass.
  CanonOptions CanonOpts = Options.Canon;
  if (!CanonOpts.Cancel)
    CanonOpts.Cancel = Options.Cancel;

  auto &Canon1 = FPM.emplacePass<CanonicalizePass>(CanonOpts);
  Canon1.setStatsSink(&Stats.Canon);
  Canon1.setBudgetPool(&Pool, /*TakeAllRemaining=*/false);

  FPM.emplacePass<GVNPass>().setStatsSink(&Stats.GVNEliminated);
  FPM.emplacePass<RWEPass>().setStatsSink(&Stats.RWE);

  // RWE-forwarded values can expose new exact types: canonicalize again,
  // spending whatever the first run left in the pool.
  auto &Canon2 =
      FPM.emplacePass<CanonicalizePass>(CanonOpts, "canonicalize-2");
  Canon2.setStatsSink(&Stats.Canon);
  Canon2.setBudgetPool(&Pool, /*TakeAllRemaining=*/true);

  FPM.emplacePass<DCEPass>().setStatsSink(&Stats.DCE);

  FPM.setObserver(Options.Observer);
  FPM.setInstrumentation(Options.Instr);
  FPM.setCancellation(Options.Cancel);
  return FPM;
}

} // namespace

const std::vector<std::string> &incline::opt::pipelinePassNames() {
  static const std::vector<std::string> Names = [] {
    PipelineStats Stats;
    BudgetPool Pool(0);
    return buildPipeline(PipelineOptions(), Stats, Pool).passNames();
  }();
  return Names;
}

PipelineStats incline::opt::runPipelinePrefix(ir::Function &F,
                                              const ir::Module &M,
                                              size_t NumPasses,
                                              const PipelineOptions &Options) {
  PipelineStats Stats;
  BudgetPool Pool(Options.VisitBudget);
  FunctionPassManager FPM = buildPipeline(Options, Stats, Pool);
  if (Options.AM) {
    FPM.runPrefix(F, M, *Options.AM, NumPasses);
    return Stats;
  }
  AnalysisManager LocalAM;
  FPM.runPrefix(F, M, LocalAM, NumPasses);
  return Stats;
}

PipelineStats incline::opt::runOptimizationPipeline(
    ir::Function &F, const ir::Module &M, const PipelineOptions &Options) {
  return runPipelinePrefix(F, M, pipelinePassNames().size(), Options);
}

PipelineStats incline::opt::runOptimizationPipeline(ir::Function &F,
                                                    const ir::Module &M,
                                                    uint64_t VisitBudget) {
  PipelineOptions Options;
  Options.VisitBudget = VisitBudget;
  return runOptimizationPipeline(F, M, Options);
}
