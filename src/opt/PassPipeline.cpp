//===- opt/PassPipeline.cpp --------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/PassPipeline.h"

#include "ir/Function.h"
#include "opt/GVN.h"

using namespace incline;
using namespace incline::opt;

PipelineStats incline::opt::runOptimizationPipeline(ir::Function &F,
                                                    const ir::Module &M,
                                                    uint64_t VisitBudget) {
  PipelineStats Stats;
  CanonOptions Options;
  Options.VisitBudget = VisitBudget / 2;

  Stats.Canon += canonicalize(F, M, Options);
  Stats.GVNEliminated = runGVN(F);
  Stats.RWE = eliminateReadsWrites(F);
  // RWE-forwarded values can expose new exact types: canonicalize again.
  Stats.Canon += canonicalize(F, M, Options);
  Stats.DCE = eliminateDeadCode(F);
  return Stats;
}
