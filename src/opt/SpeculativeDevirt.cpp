//===- opt/SpeculativeDevirt.cpp -------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/SpeculativeDevirt.h"

#include "ir/Dominators.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "opt/InlineIR.h"
#include "profile/ProfileData.h"
#include "support/Casting.h"

#include <unordered_map>
#include <unordered_set>

using namespace incline;
using namespace incline::ir;
using namespace incline::opt;

namespace {

/// The baseline instructions executed at-or-after the resume point: the
/// resume virtual call and everything following it in its block, plus every
/// block reachable from the resume block's successors (the resume block
/// itself re-enters the set through loop back edges). A captured value must
/// have a user here — otherwise nothing the baseline executes after the
/// transfer can read it, and it need not be materialized.
struct AfterSet {
  const BasicBlock *SiteBB = nullptr;
  size_t SiteIndex = 0;
  std::unordered_set<const BasicBlock *> FullBlocks;

  explicit AfterSet(const Instruction *Resume) {
    SiteBB = Resume->parent();
    SiteIndex = SiteBB->indexOf(Resume);
    std::vector<const BasicBlock *> Worklist;
    for (const BasicBlock *Succ : SiteBB->successors())
      Worklist.push_back(Succ);
    while (!Worklist.empty()) {
      const BasicBlock *BB = Worklist.back();
      Worklist.pop_back();
      if (!FullBlocks.insert(BB).second)
        continue;
      for (const BasicBlock *Succ : BB->successors())
        Worklist.push_back(Succ);
    }
  }

  bool contains(const Instruction *I) const {
    const BasicBlock *BB = I->parent();
    if (FullBlocks.count(BB))
      return true;
    return BB == SiteBB && BB->indexOf(I) >= SiteIndex;
  }
};

/// True if some baseline user of \p V executes at-or-after the resume point.
bool liveAcrossResume(const Value *V, const AfterSet &After) {
  for (const Instruction *User : V->users())
    if (After.contains(User))
      return true;
  return false;
}

/// One callsite the collection phase approved for speculation.
struct SpeculationSite {
  VirtualCallInst *VCall = nullptr; ///< The clone-side virtual call.
  int SpeculatedClass = 0;          ///< Dominant receiver class K.
  const types::MethodInfo *Target = nullptr;
  FrameState State;                 ///< Fully resolved against the baseline.
};

class SpeculativeDevirtImpl {
public:
  SpeculativeDevirtImpl(Function &F, const Module &M,
                        const profile::ProfileTable &Profiles,
                        const SpeculativeDevirtOptions &Opts,
                        const SpeculationBlacklist *Blacklist)
      : F(F), M(M), Profiles(Profiles), Opts(Opts), Blacklist(Blacklist) {}

  SpeculativeDevirtStats run() {
    // Only ever rewrite a compilation clone whose baseline still exists
    // unmodified in the module — the frame states point back into it.
    Baseline = M.function(F.name());
    if (!Baseline || Baseline == &F)
      return Stats;

    std::vector<SpeculationSite> Sites = collectSites();
    if (Sites.empty())
      return Stats;

    // Clone-side value lookup for frame-state capture: profileId -> value.
    // Updated as sites are rewritten (a captured earlier virtual call is
    // replaced by its guarded direct call, which dominates everything the
    // original dominated).
    for (const auto &BB : F.blocks())
      for (const auto &Inst : BB->instructions())
        if (!Inst->type().isVoid())
          CloneValues[Inst->profileId()] = Inst.get();

    for (SpeculationSite &Site : Sites)
      transform(Site);
    return Stats;
  }

private:
  //===--------------------------------------------------------------------===//
  // Collection
  //===--------------------------------------------------------------------===//

  std::vector<SpeculationSite> collectSites() {
    // Baseline lookup: profileId -> instruction (ids are clone-preserved,
    // so the clone's virtual calls name their baseline counterparts).
    std::unordered_map<unsigned, const Instruction *> BaselineInsts;
    for (const auto &BB : Baseline->blocks())
      for (const auto &Inst : BB->instructions())
        BaselineInsts[Inst->profileId()] = Inst.get();

    const DominatorTree BDT(*Baseline);

    std::vector<SpeculationSite> Sites;
    for (const auto &BB : F.blocks()) {
      for (const auto &Inst : BB->instructions()) {
        auto *VCall = dyn_cast<VirtualCallInst>(Inst.get());
        if (!VCall)
          continue;
        SpeculationSite Site;
        if (considerSite(VCall, BaselineInsts, BDT, Site))
          Sites.push_back(std::move(Site));
      }
    }
    return Sites;
  }

  bool considerSite(
      VirtualCallInst *VCall,
      const std::unordered_map<unsigned, const Instruction *> &BaselineInsts,
      const DominatorTree &BDT, SpeculationSite &Site) {
    Value *Recv = VCall->receiver();
    if (!Recv->type().isObject() || Recv->type().isNull())
      return false;
    int StaticClass = Recv->type().classId();

    // Leave every site the canonicalizer devirtualizes deterministically
    // alone: exact receiver types and CHA-unique dispatch need no guard.
    if (Recv->hasExactType())
      return false;
    if (M.classes().uniqueDispatchTarget(StaticClass, VCall->methodName()))
      return false;

    if (Blacklist && Blacklist->contains(F.name(), VCall->profileId())) {
      ++Stats.BlacklistSkipped;
      return false;
    }

    // A clearly dominant receiver class in the histogram.
    const profile::ReceiverProfile *RP =
        Profiles.receiverProfile(F.name(), VCall->profileId());
    if (!RP || RP->total() < Opts.MinSamples)
      return false;
    auto Top = RP->topReceivers(1, Opts.MinProbability);
    if (Top.empty())
      return false;
    int K = Top.front().first;

    // The profile may lie (trained on a different program): the speculated
    // class must exist, fit the static type, and resolve to a function the
    // module actually contains.
    if (!M.classes().isSubclassOf(K, StaticClass))
      return false;
    const types::MethodInfo *Target =
        M.classes().resolveMethod(K, VCall->methodName());
    if (!Target || !M.function(Target->QualifiedName))
      return false;

    // The baseline counterpart we deoptimize back to. Virtual calls the
    // clone acquired with fresh ids (none today — the pass runs before
    // inlining — but cheap to keep honest) have no resume point: only
    // single-frame deoptimization is supported.
    auto It = BaselineInsts.find(VCall->profileId());
    if (It == BaselineInsts.end())
      return false;
    const auto *BV = dyn_cast<VirtualCallInst>(It->second);
    if (!BV || BV->methodName() != VCall->methodName() ||
        !BDT.isReachable(BV->parent()))
      return false;

    if (!buildFrameState(BV, BDT, Site.State))
      return false;
    Site.VCall = VCall;
    Site.SpeculatedClass = K;
    Site.Target = Target;
    return true;
  }

  /// Captures the baseline values a resume at \p BV needs: every argument
  /// or instruction result that dominates \p BV *and* is used at-or-after
  /// it. (Anything used later that does not dominate BV is recomputed on
  /// every path from BV to the use, so it need not be transferred.)
  /// Deterministic slot order: arguments by index, then instructions in
  /// baseline block/instruction order.
  bool buildFrameState(const VirtualCallInst *BV, const DominatorTree &BDT,
                       FrameState &State) {
    const AfterSet After(BV);
    State.BaselineSymbol = Baseline->name();
    State.BaselineBlockId = BV->parent()->id();
    State.ResumePoint = BV->profileId();
    State.Slots.clear();

    for (size_t I = 0; I < Baseline->numParams(); ++I)
      if (liveAcrossResume(Baseline->arg(I), After))
        State.Slots.push_back({FrameStateSlot::Target::Argument,
                               static_cast<unsigned>(I)});

    for (const auto &BB : Baseline->blocks()) {
      bool DominatesSite =
          BB.get() != BV->parent() && BDT.dominates(BB.get(), BV->parent());
      for (const auto &Inst : BB->instructions()) {
        if (Inst->type().isVoid())
          continue;
        bool Dominates =
            DominatesSite || (BB.get() == BV->parent() &&
                              BB->indexOf(Inst.get()) < After.SiteIndex);
        if (Dominates && liveAcrossResume(Inst.get(), After))
          State.Slots.push_back(
              {FrameStateSlot::Target::Instruction, Inst->profileId()});
      }
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Transformation
  //===--------------------------------------------------------------------===//

  void transform(SpeculationSite &Site) {
    VirtualCallInst *VCall = Site.VCall;
    BasicBlock *Pre = VCall->parent();
    Value *Recv = VCall->receiver();
    std::vector<Value *> ExtraArgs;
    for (size_t I = 0; I < VCall->numArgs(); ++I)
      ExtraArgs.push_back(VCall->arg(I));
    types::Type RetTy = VCall->type();

    // Everything after the callsite moves into the continuation; the
    // virtual call itself stays behind in Pre until the end.
    BasicBlock *Cont = splitBlockAfter(F, VCall);
    BasicBlock *CallBB = F.addBlock("spec.call");
    BasicBlock *FailBB = F.addBlock("spec.deopt");

    IRBuilder B(F, Pre);
    B.guard(Recv, Site.SpeculatedClass, CallBB, FailBB);

    // Pass edge: receiver pinned to the exact speculated class (the guard
    // proved it, and also that the receiver is non-null), direct call the
    // inliner can expand, fall through to the continuation.
    B.setInsertBlock(CallBB);
    CheckCastInst *Pinned = B.checkCast(Recv, Site.SpeculatedClass);
    Pinned->setExactType(true);
    std::vector<Value *> CallArgs;
    CallArgs.push_back(Pinned);
    CallArgs.insert(CallArgs.end(), ExtraArgs.begin(), ExtraArgs.end());
    CallInst *Direct = B.call(Site.Target->QualifiedName, CallArgs, RetTy);
    B.jump(Cont);

    // Fail edge: deoptimize, re-executing the dispatch in the baseline.
    B.setInsertBlock(FailBB);
    std::vector<Value *> Captured;
    Captured.reserve(Site.State.Slots.size());
    for (const FrameStateSlot &Slot : Site.State.Slots)
      Captured.push_back(Slot.Kind == FrameStateSlot::Target::Argument
                             ? static_cast<Value *>(F.arg(Slot.BaselineId))
                             : CloneValues.at(Slot.BaselineId));
    B.deopt("speculation-failed", std::move(Site.State), Captured);

    // CallBB is Cont's only predecessor (the fail edge never reaches it),
    // so the direct call dominates every former use of the virtual call.
    if (!RetTy.isVoid()) {
      VCall->replaceAllUsesWith(Direct);
      CloneValues[VCall->profileId()] = Direct;
    }
    Pre->erase(VCall);
    ++Stats.GuardsEmitted;
  }

  Function &F;
  const Module &M;
  const profile::ProfileTable &Profiles;
  const SpeculativeDevirtOptions &Opts;
  const SpeculationBlacklist *Blacklist;
  const Function *Baseline = nullptr;
  std::unordered_map<unsigned, Value *> CloneValues;
  SpeculativeDevirtStats Stats;
};

} // namespace

SpeculativeDevirtStats
incline::opt::speculativeDevirt(Function &F, const Module &M,
                                const profile::ProfileTable &Profiles,
                                const SpeculativeDevirtOptions &Opts,
                                const SpeculationBlacklist *Blacklist) {
  return SpeculativeDevirtImpl(F, M, Profiles, Opts, Blacklist).run();
}

PreservedAnalyses SpeculativeDevirtPass::run(Function &F, const Module &M,
                                             AnalysisManager &AM) {
  const profile::ProfileTable *Profiles = AM.profiles();
  if (!Profiles)
    return PreservedAnalyses::all();
  SpeculativeDevirtStats Run = speculativeDevirt(F, M, *Profiles, Opts,
                                                 Blacklist);
  if (StatsSink) {
    StatsSink->GuardsEmitted += Run.GuardsEmitted;
    StatsSink->BlacklistSkipped += Run.BlacklistSkipped;
  }
  return PreservedAnalyses::allIf(Run.GuardsEmitted == 0);
}
