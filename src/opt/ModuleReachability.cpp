//===- opt/ModuleReachability.cpp ------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/ModuleReachability.h"

#include "ir/Module.h"
#include "profile/ProfileData.h"
#include "support/Casting.h"

#include <utility>

using namespace incline;
using namespace incline::ir;
using namespace incline::opt;

namespace {

class ReachabilityBuilder {
public:
  ReachabilityBuilder(const Module &M, const profile::ProfileTable *Profiles)
      : M(M), Profiles(Profiles) {
    Live.resize(M.classes().numClasses(), 0);
  }

  void run(const std::vector<std::string> &RootSymbols) {
    for (const std::string &Root : RootSymbols) {
      markFunction(Root);
      // A root's caller lives outside the analyzed world: any subclass of
      // an object parameter's declared class may arrive, so CHA cannot
      // prove anything in that subtree dead.
      if (const Function *F = M.function(Root))
        for (size_t I = 0; I < F->numParams(); ++I) {
          types::Type Ty = F->arg(I)->type();
          if (Ty.isObject() && !Ty.isNull())
            for (int K : M.classes().subtreeOf(Ty.classId()))
              markClass(K);
        }
    }
    drain();

    // CHA fallback: dispatch sites whose receiver subtree has no live class
    // at fixpoint keep every CHA target reachable — "never instantiated"
    // proves nothing about a receiver whose provenance we cannot see.
    // New reachability can surface new sites, so iterate to a fixpoint.
    for (;;) {
      size_t Before = Reachable.size();
      for (const auto &[ClassId, Name] : Sites) {
        bool AnyLive = false;
        for (int K : M.classes().subtreeOf(ClassId))
          if (isLive(K)) {
            AnyLive = true;
            break;
          }
        if (AnyLive)
          continue;
        for (const auto &[K, MI] : M.classes().dispatchTargets(ClassId, Name))
          if (MI)
            markFunction(MI->QualifiedName);
      }
      drain();
      if (Reachable.size() == Before)
        break;
    }
  }

  std::set<std::string, std::less<>> takeReachable() {
    return std::move(Reachable);
  }
  std::vector<char> takeLive() { return std::move(Live); }

private:
  bool isLive(int K) const {
    return K >= 0 && static_cast<size_t>(K) < Live.size() && Live[K];
  }

  void markFunction(std::string_view Symbol) {
    if (Reachable.count(Symbol))
      return;
    Reachable.insert(std::string(Symbol));
    if (const Function *F = M.function(Symbol))
      FnWork.push_back(F);
  }

  void markClass(int K) {
    if (K < 0 || static_cast<size_t>(K) >= Live.size() || Live[K])
      return;
    Live[K] = 1;
    ClassWork.push_back(K);
  }

  void addSite(int ClassId, const std::string &Name) {
    if (!SiteSeen.insert({ClassId, Name}).second)
      return;
    Sites.emplace_back(ClassId, Name);
    for (int K : M.classes().subtreeOf(ClassId))
      if (isLive(K))
        resolveTo(K, Name);
  }

  void resolveTo(int K, std::string_view Name) {
    if (const types::MethodInfo *MI = M.classes().resolveMethod(K, Name))
      markFunction(MI->QualifiedName);
  }

  void drain() {
    while (!FnWork.empty() || !ClassWork.empty()) {
      if (!FnWork.empty()) {
        const Function *F = FnWork.back();
        FnWork.pop_back();
        scan(*F);
        continue;
      }
      int K = ClassWork.back();
      ClassWork.pop_back();
      // A newly live class re-resolves every dispatch site it can receive.
      for (const auto &[ClassId, Name] : Sites)
        if (M.classes().isSubclassOf(K, ClassId))
          resolveTo(K, Name);
    }
  }

  void scan(const Function &F) {
    for (const auto &BB : F.blocks()) {
      for (const auto &Inst : BB->instructions()) {
        if (const auto *Call = dyn_cast<CallInst>(Inst.get())) {
          markFunction(Call->callee());
        } else if (const auto *New = dyn_cast<NewObjectInst>(Inst.get())) {
          markClass(New->classId());
        } else if (const auto *VCall = dyn_cast<VirtualCallInst>(Inst.get())) {
          types::Type Ty = VCall->receiver()->type();
          if (Ty.isObject() && !Ty.isNull())
            addSite(Ty.classId(), VCall->methodName());
        } else if (const auto *D = dyn_cast<DeoptInst>(Inst.get())) {
          // A deopt must always find its baseline resume target.
          if (D->hasFrameState())
            markFunction(D->frameState().BaselineSymbol);
        }
      }
    }
    if (const OsrAnchor *A = F.osrAnchor())
      markFunction(A->BaselineSymbol);
    // Profile assist: receivers the interpreter actually observed are live
    // even when no reachable allocation explains them (stale or imported
    // profiles — the "present only in profiles" case).
    if (Profiles)
      if (const profile::MethodProfile *MP = Profiles->find(F.name()))
        for (const auto &[ProfileId, RP] : MP->Receivers)
          for (const auto &[K, Count] : RP.Counts)
            if (Count)
              markClass(K);
  }

  const Module &M;
  const profile::ProfileTable *Profiles;
  std::set<std::string, std::less<>> Reachable;
  std::vector<char> Live;
  std::vector<const Function *> FnWork;
  std::vector<int> ClassWork;
  std::vector<std::pair<int, std::string>> Sites;
  std::set<std::pair<int, std::string>> SiteSeen;
};

} // namespace

ModuleReachability
ModuleReachability::compute(const Module &M,
                            const std::vector<std::string> &RootSymbols,
                            const profile::ProfileTable *Profiles) {
  ReachabilityBuilder Builder(M, Profiles);
  Builder.run(RootSymbols);

  ModuleReachability Result;
  Result.Reachable = Builder.takeReachable();
  Result.Live = Builder.takeLive();
  for (const auto &[Name, F] : M.functions())
    if (!Result.Reachable.count(Name))
      Result.Shaken.push_back(Name);
  return Result;
}
