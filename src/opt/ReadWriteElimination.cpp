//===- opt/ReadWriteElimination.cpp --------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/ReadWriteElimination.h"

#include "ir/Function.h"
#include "support/Casting.h"

#include <map>
#include <vector>

using namespace incline;
using namespace incline::ir;
using namespace incline::opt;

namespace {

/// Known contents of one memory location within a block.
struct FieldLoc {
  const Value *Object;
  unsigned Slot;
  bool operator<(const FieldLoc &Other) const {
    if (Object != Other.Object)
      return Object < Other.Object;
    return Slot < Other.Slot;
  }
};

struct ArrayLoc {
  const Value *Array;
  const Value *Index;
  bool operator<(const ArrayLoc &Other) const {
    if (Array != Other.Array)
      return Array < Other.Array;
    return Index < Other.Index;
  }
};

} // namespace

RWEStats incline::opt::eliminateReadsWrites(Function &F) {
  RWEStats Stats;
  for (const auto &BB : F.blocks()) {
    // Available values per location, plus the last unobserved store for
    // dead-store removal.
    std::map<FieldLoc, Value *> FieldValues;
    std::map<ArrayLoc, Value *> ArrayValues;
    std::map<FieldLoc, StoreFieldInst *> PendingFieldStores;

    std::vector<Instruction *> ToErase;

    auto KillAll = [&] {
      FieldValues.clear();
      ArrayValues.clear();
      PendingFieldStores.clear();
    };

    for (const auto &InstOwner : BB->instructions()) {
      Instruction *Inst = InstOwner.get();
      switch (Inst->kind()) {
      case ValueKind::LoadField: {
        auto *Load = cast<LoadFieldInst>(Inst);
        FieldLoc Loc{Load->object(), Load->fieldSlot()};
        auto It = FieldValues.find(Loc);
        if (It != FieldValues.end()) {
          // The available value may have a less precise static type than
          // the load (e.g. forwarding a `new C` into a load declared as a
          // supertype) — that is the point: it is *more* precise info.
          bool FromStore = PendingFieldStores.count(Loc) ||
                           !isa<LoadFieldInst>(It->second);
          Load->replaceAllUsesWith(It->second);
          ToErase.push_back(Load);
          if (FromStore)
            ++Stats.LoadsForwarded;
          else
            ++Stats.LoadsDeduplicated;
        } else {
          FieldValues[Loc] = Load;
        }
        // A load of slot k observes memory through *any* object that may
        // alias: all pending slot-k stores become live.
        for (auto It = PendingFieldStores.begin();
             It != PendingFieldStores.end();) {
          if (It->first.Slot == Load->fieldSlot())
            It = PendingFieldStores.erase(It);
          else
            ++It;
        }
        break;
      }
      case ValueKind::StoreField: {
        auto *Store = cast<StoreFieldInst>(Inst);
        FieldLoc Loc{Store->object(), Store->fieldSlot()};
        // A store to slot k may alias the same slot of any other object of
        // a compatible class; conservatively drop knowledge of slot k on
        // every other object.
        for (auto It = FieldValues.begin(); It != FieldValues.end();) {
          if (It->first.Slot == Store->fieldSlot() &&
              It->first.Object != Store->object())
            It = FieldValues.erase(It);
          else
            ++It;
        }
        // Dead store: the previous store to the same location was never
        // observed (no load, no call, no block end in between).
        auto Pending = PendingFieldStores.find(Loc);
        if (Pending != PendingFieldStores.end()) {
          ToErase.push_back(Pending->second);
          ++Stats.StoresRemoved;
        }
        PendingFieldStores[Loc] = Store;
        FieldValues[Loc] = Store->storedValue();
        break;
      }
      case ValueKind::LoadIndex: {
        auto *Load = cast<LoadIndexInst>(Inst);
        ArrayLoc Loc{Load->array(), Load->index()};
        auto It = ArrayValues.find(Loc);
        if (It != ArrayValues.end()) {
          Load->replaceAllUsesWith(It->second);
          ToErase.push_back(Load);
          ++Stats.LoadsDeduplicated;
        } else {
          ArrayValues[Loc] = Load;
        }
        break;
      }
      case ValueKind::StoreIndex: {
        auto *Store = cast<StoreIndexInst>(Inst);
        // Any array store may alias any array location with a different
        // (array, index) pair; keep only the stored location.
        ArrayValues.clear();
        ArrayValues[ArrayLoc{Store->array(), Store->index()}] =
            Store->storedValue();
        break;
      }
      case ValueKind::Call:
      case ValueKind::VirtualCall:
        // Calls may read and write anything.
        KillAll();
        break;
      default:
        break;
      }
    }
    for (Instruction *Inst : ToErase)
      BB->erase(Inst);
  }
  return Stats;
}
