//===- opt/OsrPlan.h - Loop-entry OSR planning and skeleton building -------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-entry on-stack replacement support, in two halves:
///
///  * `computeOsrPlan` decides, per CFG edge of an interpreted baseline,
///    which loop header (if any) that edge's execution should be credited
///    to for backedge counting, and which headers are eligible OSR entry
///    points. Natural-loop backedges (target dominates source) credit and
///    may enter their own header; retreating edges of irreducible cycles
///    are *normalized* to the innermost enclosing natural loop's header —
///    they heat that header's counter but never trigger an entry at their
///    own target, so OSR entry only ever happens at a dominating header
///    where the live frame is well-defined.
///
///  * `buildOsrVariant` manufactures the OSR skeleton for one header: a
///    clone of the baseline whose new entry block materializes the live
///    frame through `OsrEntryInst`s (one per header phi plus one per value
///    defined outside the loop region but used inside it) and jumps to the
///    header. The skeleton keeps the baseline's name and signature so the
///    downstream compiler pipeline (speculative devirtualization, frame
///    states, profiles, trial cache) treats it exactly like a method
///    compilation; the `OsrAnchor` is what marks it as a loop variant.
///
/// This is the inverse of deoptimization's frame transfer: deopt maps
/// compiled values *out* to baseline slots, OSR entry maps baseline slots
/// *in* to compiled values, and both speak `FrameStateSlot`.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_OPT_OSRPLAN_H
#define INCLINE_OPT_OSRPLAN_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace incline::ir {
class Function;
} // namespace incline::ir

namespace incline::opt {

/// Which loop header each CFG edge credits for backedge counting, plus the
/// set of headers eligible to anchor an OSR variant. Computed once per
/// resolved interpreted body and cached by the JIT runtime.
struct OsrPlan {
  /// edgeKey(From, To) -> baseline block id of the credited header.
  std::unordered_map<uint64_t, unsigned> EdgeToHeader;
  /// Baseline block ids of entry-eligible (natural, dominating) headers.
  std::unordered_set<unsigned> Headers;

  static uint64_t edgeKey(unsigned FromId, unsigned ToId) {
    return (static_cast<uint64_t>(FromId) << 32) | ToId;
  }

  /// Credited header for taking From -> To, or `NoHeader`.
  unsigned headerForEdge(unsigned FromId, unsigned ToId) const {
    auto It = EdgeToHeader.find(edgeKey(FromId, ToId));
    return It == EdgeToHeader.end() ? NoHeader : It->second;
  }

  bool empty() const { return EdgeToHeader.empty(); }

  static constexpr unsigned NoHeader = ~0u;
};

/// Analyzes \p F's loops and classifies every retreating CFG edge. See the
/// file comment for the natural-vs-irreducible normalization rule.
OsrPlan computeOsrPlan(const ir::Function &F);

/// Builds the OSR skeleton of \p Baseline anchored at the loop header with
/// baseline block id \p HeaderBlockId. Returns null when the header cannot
/// anchor a variant (unknown id, or the header is the entry block — a
/// degenerate self-loop entry would race function entry itself).
///
/// The result verifies under `verifyFunction` + `verifyOsrEntries` and is
/// ready for `jit::Compiler::compile` like any baseline clone. Out-of-loop
/// materializations carry the *baseline definition's* profile id so that
/// speculative devirtualization's frame-state capture (which resolves
/// captured operands by baseline profile id) keeps working inside the
/// variant; header-phi entries keep fresh ids because the cloned phis
/// themselves already carry the baseline ids.
std::unique_ptr<ir::Function> buildOsrVariant(const ir::Function &Baseline,
                                              unsigned HeaderBlockId);

} // namespace incline::opt

#endif // INCLINE_OPT_OSRPLAN_H
