//===- opt/InlineIR.h - Mechanical inline substitution ---------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two graft transformations the inliner applies:
///
///  * `inlineCall` — the classic inline substitution [74]: replaces a
///    direct callsite with a copy of the callee body (the paper's
///    `inlineIR`, Listing 5);
///  * `emitTypeSwitch` — expands a virtual callsite into a class-id
///    dispatch cascade over speculated receiver types, each arm a direct
///    call, ending in the generic virtual call (Hölzle & Ungar [34],
///    §IV "Polymorphic inlining").
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_OPT_INLINEIR_H
#define INCLINE_OPT_INLINEIR_H

#include <unordered_map>
#include <vector>

namespace incline::types {
struct MethodInfo;
}

namespace incline::ir {
class BasicBlock;
class CallInst;
class Function;
class Instruction;
class Value;
class VirtualCallInst;
} // namespace incline::ir

namespace incline::opt {

/// Result of one inline substitution.
struct InlineResult {
  /// Maps each value of the callee (arguments and instructions) to its
  /// counterpart in the caller — how the call-tree transfers its child
  /// callsite pointers after inlining.
  std::unordered_map<const ir::Value *, ir::Value *> ValueMap;
};

/// Inlines \p Callee's body at \p Call inside \p Caller, removing the call.
///
/// Requirements: \p Call belongs to \p Caller; argument count matches;
/// \p Callee contains at least one return instruction. Arguments keep the
/// *call-site* static types (specialization): the callee copy sees the
/// actual argument values directly.
InlineResult inlineCall(ir::Function &Caller, ir::CallInst *Call,
                        const ir::Function &Callee);

/// One speculated dispatch target of a typeswitch.
struct SpeculatedTarget {
  int ClassId;
  const types::MethodInfo *Method;
};

/// Result of typeswitch emission.
struct TypeSwitchResult {
  /// The direct calls created, one per speculated target (same order).
  /// These become new kind-C children of the polymorphic call-tree node.
  std::vector<ir::CallInst *> DirectCalls;
  /// The fallback virtual call covering unspeculated receivers.
  ir::VirtualCallInst *Fallback = nullptr;
};

/// Replaces \p VCall with a null check + class-id dispatch over \p Targets
/// (at least one), falling back to a residual virtual call. Semantics are
/// preserved for every receiver class.
TypeSwitchResult emitTypeSwitch(ir::Function &Caller,
                                ir::VirtualCallInst *VCall,
                                const std::vector<SpeculatedTarget> &Targets);

/// Splits \p Point's block after \p Point; everything following it moves
/// into a new continuation block (successor phis are rekeyed). The source
/// block is left without a terminator. Exposed for the inliner's phases.
ir::BasicBlock *splitBlockAfter(ir::Function &F, ir::Instruction *Point);

} // namespace incline::opt

#endif // INCLINE_OPT_INLINEIR_H
