//===- opt/InlineIR.cpp -------------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/InlineIR.h"

#include "ir/IRBuilder.h"
#include "ir/IRCloner.h"
#include "ir/Module.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"
#include "types/ClassHierarchy.h"

using namespace incline;
using namespace incline::ir;
using namespace incline::opt;

BasicBlock *incline::opt::splitBlockAfter(Function &F, Instruction *Point) {
  BasicBlock *B = Point->parent();
  assert(B && "split point must be attached");
  BasicBlock *Cont = F.addBlock(B->name() + ".cont");

  size_t SplitIndex = B->indexOf(Point) + 1;
  while (B->size() > SplitIndex) {
    Instruction *Inst = B->instructions()[SplitIndex].get();
    std::unique_ptr<Instruction> Owned = B->detach(Inst);
    if (Inst->isTerminator())
      Cont->append(std::move(Owned));
    else
      Cont->insertAt(Cont->size(), std::move(Owned));
  }

  // Successor phis keyed by B now receive their edge from Cont.
  for (BasicBlock *Succ : Cont->successors())
    for (PhiInst *Phi : Succ->phis())
      for (size_t I = 0; I < Phi->numIncoming(); ++I)
        if (Phi->incomingBlock(I) == B)
          Phi->setIncomingBlock(I, Cont);
  return Cont;
}

InlineResult incline::opt::inlineCall(Function &Caller, CallInst *Call,
                                      const Function &Callee) {
  assert(Call->parent() && Call->parent()->parent() == &Caller &&
         "callsite does not belong to the caller");
  assert(Call->numArgs() == Callee.numParams() && "argument count mismatch");

  BasicBlock *Pre = Call->parent();
  BasicBlock *Cont = splitBlockAfter(Caller, Call);

  // Graft the callee body; arguments become the actual call operands.
  std::vector<Value *> Args;
  for (size_t I = 0; I < Call->numArgs(); ++I)
    Args.push_back(Call->arg(I));
  ClonedBody Body = cloneBodyInto(Callee, Caller, Args);
  assert(!Body.Returns.empty() &&
         "refusing to inline a callee with no return");

  // Rewire: pre-block jumps into the callee entry; returns jump to Cont.
  {
    auto Jump = std::make_unique<JumpInst>(Body.Entry);
    Jump->setProfileId(Caller.takeNextProfileId());
    Pre->append(std::move(Jump));
  }

  Value *ReturnValue = nullptr;
  bool ProducesValue = !Call->type().isVoid();
  if (ProducesValue && Body.Returns.size() > 1) {
    // Multiple returns merge through a phi at the continuation head.
    auto Phi = std::make_unique<PhiInst>(Call->type());
    Phi->setProfileId(Caller.takeNextProfileId());
    PhiInst *PhiRaw = cast<PhiInst>(Cont->insertAt(0, std::move(Phi)));
    for (Instruction *RetInst : Body.Returns) {
      auto *Ret = cast<ReturnInst>(RetInst);
      PhiRaw->addIncoming(Ret->returnValue(), Ret->parent());
    }
    ReturnValue = PhiRaw;
  } else if (ProducesValue) {
    ReturnValue = cast<ReturnInst>(Body.Returns[0])->returnValue();
  }

  for (Instruction *RetInst : Body.Returns) {
    BasicBlock *RetBB = RetInst->parent();
    std::unique_ptr<Instruction> OldRet = RetBB->detach(RetInst);
    OldRet->dropAllOperands();
    auto Jump = std::make_unique<JumpInst>(Cont);
    Jump->setProfileId(Caller.takeNextProfileId());
    RetBB->append(std::move(Jump));
  }

  if (ProducesValue)
    Call->replaceAllUsesWith(ReturnValue);
  InlineResult Result;
  Result.ValueMap = std::move(Body.ValueMap);
  Pre->erase(Call);
  return Result;
}

TypeSwitchResult
incline::opt::emitTypeSwitch(Function &Caller, VirtualCallInst *VCall,
                             const std::vector<SpeculatedTarget> &Targets) {
  assert(!Targets.empty() && "typeswitch needs at least one target");
  BasicBlock *Pre = VCall->parent();
  assert(Pre && Pre->parent() == &Caller && "callsite not in caller");
  BasicBlock *Cont = splitBlockAfter(Caller, VCall);

  Value *Recv = VCall->receiver();
  std::vector<Value *> ExtraArgs;
  for (size_t I = 0; I < VCall->numArgs(); ++I)
    ExtraArgs.push_back(VCall->arg(I));
  types::Type RetTy = VCall->type();
  bool ProducesValue = !RetTy.isVoid();

  TypeSwitchResult Result;

  // Pre: null check + class-id load, then the first test.
  IRBuilder B(Caller, Pre);
  Value *CheckedRecv = B.nullCheck(Recv);
  Value *ClassId = B.getClassId(CheckedRecv);

  // Result merge phi (created up front; arms add incoming edges).
  PhiInst *MergePhi = nullptr;
  if (ProducesValue) {
    auto Phi = std::make_unique<PhiInst>(RetTy);
    Phi->setProfileId(Caller.takeNextProfileId());
    MergePhi = cast<PhiInst>(Cont->insertAt(0, std::move(Phi)));
  }

  BasicBlock *TestBB = Pre; // The current block emitting a class-id test.
  for (size_t I = 0; I < Targets.size(); ++I) {
    const SpeculatedTarget &Target = Targets[I];
    BasicBlock *ArmBB =
        Caller.addBlock("typeswitch.arm" + std::to_string(I));
    BasicBlock *NextBB =
        Caller.addBlock(I + 1 < Targets.size()
                            ? "typeswitch.test" + std::to_string(I + 1)
                            : "typeswitch.fallback");

    B.setInsertBlock(TestBB);
    Value *Hit = B.binop(BinOpInst::Opcode::Eq, ClassId,
                         B.constInt(Target.ClassId));
    B.branch(Hit, ArmBB, NextBB);

    // Arm: receiver pinned to the exact class, direct call, jump to Cont.
    B.setInsertBlock(ArmBB);
    CheckCastInst *Pinned = B.checkCast(CheckedRecv, Target.ClassId);
    Pinned->setExactType(true); // class id matched exactly on this path.
    std::vector<Value *> CallArgs;
    CallArgs.push_back(Pinned);
    CallArgs.insert(CallArgs.end(), ExtraArgs.begin(), ExtraArgs.end());
    CallInst *Direct = B.call(Target.Method->QualifiedName, CallArgs, RetTy);
    Result.DirectCalls.push_back(Direct);
    B.jump(Cont);
    if (MergePhi)
      MergePhi->addIncoming(Direct, ArmBB);

    TestBB = NextBB;
  }

  // Fallback: the residual virtual call.
  B.setInsertBlock(TestBB);
  VirtualCallInst *Fallback =
      B.virtualCall(VCall->methodName(), CheckedRecv, ExtraArgs, RetTy);
  Result.Fallback = Fallback;
  B.jump(Cont);
  if (MergePhi)
    MergePhi->addIncoming(Fallback, TestBB);

  if (MergePhi)
    VCall->replaceAllUsesWith(MergePhi);
  Pre->erase(VCall);
  return Result;
}
