//===- opt/LoopPeeling.h - First-iteration loop peeling --------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Peels the first iteration of while-shaped loops whose header carries a
/// phi that is *more precisely typed on entry* than in the steady state —
/// the paper's trigger: "we also apply peeling on a loop's first iteration
/// if we detect that the loop contains a phi-node whose type is more
/// specific in that first iteration" (§IV). After peeling, the
/// canonicalizer sees the exact entry type in the peeled copy and can
/// devirtualize its calls.
///
/// Applies to loops in canonical while shape: a single latch, a header
/// with exactly one entry predecessor, and a single exit block reached
/// only from the header. Loops in other shapes are skipped.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_OPT_LOOPPEELING_H
#define INCLINE_OPT_LOOPPEELING_H

#include <cstddef>

namespace incline::ir {
class DominatorTree;
class Function;
class LoopInfo;
} // namespace incline::ir

namespace incline::opt {

/// Peeling configuration.
struct PeelOptions {
  /// Loops larger than this many instructions are not worth duplicating.
  size_t MaxLoopSize = 120;
  /// Peel even without the type-precision trigger (for testing).
  bool RequireTypeTrigger = true;
};

/// Peels qualifying loops once. Returns the number of loops peeled.
/// \p DT and \p LI must be current for \p F; peeling a loop invalidates
/// both (the caller's AnalysisManager learns that via the CFG epoch and
/// the pass's PreservedAnalyses). Callers go through the pass framework
/// (LoopPeelPass in Passes.h), which serves the analyses from cache.
size_t peelLoops(ir::Function &F, const ir::DominatorTree &DT,
                 const ir::LoopInfo &LI,
                 const PeelOptions &Options = PeelOptions());

} // namespace incline::opt

#endif // INCLINE_OPT_LOOPPEELING_H
