//===- opt/ReadWriteElimination.h - Redundant memory op removal -----------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local store-to-load forwarding and redundant-load elimination for
/// object fields and array elements. The paper applies read-write
/// elimination to the root method at the end of every inlining round
/// because it "partially restores the method receiver type information
/// that is lost when writing values to memory (and later reading the same
/// values)" (§IV) — forwarding a stored value to a later load re-exposes
/// its exact type to the canonicalizer.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_OPT_READWRITEELIMINATION_H
#define INCLINE_OPT_READWRITEELIMINATION_H

#include <cstddef>

namespace incline::ir {
class Function;
}

namespace incline::opt {

/// Statistics of one read-write elimination run.
struct RWEStats {
  size_t LoadsForwarded = 0;   ///< Load replaced by a stored value.
  size_t LoadsDeduplicated = 0; ///< Load replaced by an earlier load.
  size_t StoresRemoved = 0;    ///< Store overwritten before any read.
};

/// Runs read-write elimination on \p F (block-local, conservative
/// aliasing: any call kills everything; a store to field slot k kills all
/// slot-k knowledge of other objects).
RWEStats eliminateReadsWrites(ir::Function &F);

} // namespace incline::opt

#endif // INCLINE_OPT_READWRITEELIMINATION_H
