//===- opt/Passes.cpp --------------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "ir/Function.h"
#include "opt/GVN.h"

using namespace incline;
using namespace incline::opt;

namespace {

/// Preservation verdict for passes that may edit the CFG: everything
/// survives iff the function's CFG epoch did not move. (The AnalysisManager
/// re-checks the epoch on every lookup anyway — this keeps the *reported*
/// preservation honest so invalidation stats mean something.)
PreservedAnalyses preservedIfEpochUnchanged(const ir::Function &F,
                                            uint64_t EpochBefore) {
  return PreservedAnalyses::allIf(F.cfgEpoch() == EpochBefore);
}

} // namespace

PreservedAnalyses CanonicalizePass::run(ir::Function &F, const ir::Module &M,
                                        AnalysisManager &AM) {
  (void)AM; // Purely local rewrites; no analyses consumed.
  uint64_t EpochBefore = F.cfgEpoch();
  CanonOptions RunOpts = Opts;
  if (Pool)
    RunOpts.VisitBudget = Pool->draw(TakeAllRemaining);
  CanonStats Stats = canonicalize(F, M, RunOpts);
  if (Pool)
    Pool->spend(Stats.VisitsUsed);
  if (StatsSink)
    *StatsSink += Stats;
  return preservedIfEpochUnchanged(F, EpochBefore);
}

PreservedAnalyses GVNPass::run(ir::Function &F, const ir::Module &M,
                               AnalysisManager &AM) {
  (void)M;
  const ir::DominatorTree &DT = AM.dominators(F);
  size_t Eliminated = runGVN(F, DT);
  if (StatsSink)
    *StatsSink += Eliminated;
  // Replaces and erases instructions, never blocks or edges.
  return PreservedAnalyses::all();
}

PreservedAnalyses RWEPass::run(ir::Function &F, const ir::Module &M,
                               AnalysisManager &AM) {
  (void)M;
  (void)AM;
  RWEStats Stats = eliminateReadsWrites(F);
  if (StatsSink) {
    StatsSink->LoadsForwarded += Stats.LoadsForwarded;
    StatsSink->LoadsDeduplicated += Stats.LoadsDeduplicated;
    StatsSink->StoresRemoved += Stats.StoresRemoved;
  }
  // Block-local memory forwarding; the CFG is untouched.
  return PreservedAnalyses::all();
}

PreservedAnalyses DCEPass::run(ir::Function &F, const ir::Module &M,
                               AnalysisManager &AM) {
  (void)M;
  (void)AM;
  uint64_t EpochBefore = F.cfgEpoch();
  DCEStats Stats = eliminateDeadCode(F);
  if (StatsSink) {
    StatsSink->InstructionsRemoved += Stats.InstructionsRemoved;
    StatsSink->BlocksRemoved += Stats.BlocksRemoved;
  }
  return preservedIfEpochUnchanged(F, EpochBefore);
}

PreservedAnalyses LoopPeelPass::run(ir::Function &F, const ir::Module &M,
                                    AnalysisManager &AM) {
  (void)M;
  uint64_t EpochBefore = F.cfgEpoch();
  const ir::DominatorTree &DT = AM.dominators(F);
  const ir::LoopInfo &LI = AM.loops(F);
  size_t Peeled = peelLoops(F, DT, LI, Opts);
  if (StatsSink)
    *StatsSink += Peeled;
  return preservedIfEpochUnchanged(F, EpochBefore);
}
