//===- opt/Canonicalizer.h - Local simplification engine --------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reproduction of Graal's "canonicalization" phase (§IV, "Deep
/// inlining trials"): a worklist of local rewrites —
///
///   * constant folding              * strength reduction
///   * branch pruning                * phi simplification
///   * type-check folding            * null-check folding
///   * devirtualization (exact receiver type or unique CHA target)
///   * exactness propagation through phis and casts
///
/// The pass counts how many "simple optimizations" fired — that count is
/// the N_s(n) input of the paper's local-benefit formula (Eq. 4), which is
/// how deep inlining trials measure a callee's optimization potential after
/// argument types are propagated into it.
///
/// A node-visit budget models the JIT's bounded compile time: once
/// exhausted the pass stops early (§II.3 — optimizations with a limited
/// budget are less effective on huge methods).
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_OPT_CANONICALIZER_H
#define INCLINE_OPT_CANONICALIZER_H

#include <cstdint>

namespace incline::ir {
class Function;
class Module;
} // namespace incline::ir

namespace incline::support {
class CancellationToken;
} // namespace incline::support

namespace incline::opt {

/// Which rewrites fired during one canonicalization run.
struct CanonStats {
  unsigned ConstantsFolded = 0;
  unsigned StrengthReductions = 0;
  unsigned BranchesPruned = 0;
  unsigned PhisSimplified = 0;
  unsigned TypeChecksFolded = 0;
  unsigned NullChecksFolded = 0;
  unsigned Devirtualized = 0;
  unsigned CastsFolded = 0;
  /// Worklist pops spent; lets a pipeline carry the unspent remainder of a
  /// shared visit budget into a later canonicalization run.
  uint64_t VisitsUsed = 0;
  /// True when the visit budget ran out before the fixpoint.
  bool BudgetExhausted = false;

  /// The paper's N_s: the number of simple optimizations triggered, all
  /// with equal weight ("we give them all equal weight", §IV).
  unsigned total() const {
    return ConstantsFolded + StrengthReductions + BranchesPruned +
           PhisSimplified + TypeChecksFolded + NullChecksFolded +
           Devirtualized + CastsFolded;
  }

  CanonStats &operator+=(const CanonStats &Other);
};

/// Canonicalizer options.
struct CanonOptions {
  /// Maximum worklist pops before giving up (compile-time budget).
  uint64_t VisitBudget = 200'000;
  /// Whether virtual calls may be rewritten to direct calls.
  bool EnableDevirtualization = true;
  /// Test-only fault injection for the fuzzing subsystem's self-tests:
  /// constant-folds `a - b` as `b - a`, a silent miscompile the
  /// differential oracle must detect, the reducer must shrink, and pass
  /// bisection must attribute to "canonicalize". Never enable outside
  /// tests/tools.
  bool TestOnlyMiscompileSubFold = false;
  /// Supervised-compilation token polled every few thousand worklist pops
  /// so a wall-clock deadline or a cancel request unwinds mid-run instead
  /// of waiting for the pass boundary. Work-unit charging stays pass-level
  /// (executePass), so this poll cannot change deterministic-mode behavior:
  /// only the nondeterministic clocks can fire here. Null = unsupervised.
  const support::CancellationToken *Cancel = nullptr;
};

/// Runs the canonicalizer on \p F to a fixpoint (or until the budget runs
/// out). \p M provides the class hierarchy and callee signatures.
CanonStats canonicalize(ir::Function &F, const ir::Module &M,
                        const CanonOptions &Options = CanonOptions());

} // namespace incline::opt

#endif // INCLINE_OPT_CANONICALIZER_H
