//===- support/StringUtils.cpp --------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

using namespace incline;

std::vector<std::string> incline::splitString(std::string_view Text,
                                              char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Parts.emplace_back(Text.substr(Start));
      return Parts;
    }
    Parts.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string incline::joinStrings(const std::vector<std::string> &Parts,
                                 std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string_view incline::trim(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string incline::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result(Needed > 0 ? static_cast<size_t>(Needed) : 0, '\0');
  if (Needed > 0)
    std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

bool incline::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}
