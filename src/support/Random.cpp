//===- support/Random.cpp -------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include "support/ErrorHandling.h"

using namespace incline;

size_t SplitMix64::nextWeighted(const std::vector<double> &Weights) {
  double Total = 0;
  for (double W : Weights) {
    assert(W >= 0 && "weights must be non-negative");
    Total += W;
  }
  if (Total <= 0)
    INCLINE_FATAL("nextWeighted requires at least one positive weight");
  double Point = nextDouble() * Total;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Point -= Weights[I];
    if (Point < 0)
      return I;
  }
  return Weights.size() - 1;
}
