//===- support/ErrorHandling.h - Fatal errors and unreachable ------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic-error helpers in the spirit of llvm/Support/ErrorHandling.h:
/// `incline_unreachable` documents impossible control flow and
/// `reportFatalError` aborts with a diagnostic for unrecoverable states.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_SUPPORT_ERRORHANDLING_H
#define INCLINE_SUPPORT_ERRORHANDLING_H

#include <string_view>

namespace incline {

/// Prints \p Msg (with source position) to stderr and aborts. Used for
/// invariant violations that must be diagnosed even in release builds.
[[noreturn]] void reportFatalError(std::string_view Msg, const char *File,
                                   unsigned Line);

[[noreturn]] void inclineUnreachableInternal(const char *Msg, const char *File,
                                             unsigned Line);

} // namespace incline

/// Marks a point in code that should never be reached.
#define incline_unreachable(msg)                                              \
  ::incline::inclineUnreachableInternal(msg, __FILE__, __LINE__)

/// Aborts with a diagnostic; for violated invariants (not user errors).
#define INCLINE_FATAL(msg) ::incline::reportFatalError(msg, __FILE__, __LINE__)

#endif // INCLINE_SUPPORT_ERRORHANDLING_H
