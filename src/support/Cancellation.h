//===- support/Cancellation.h - Compile budgets & cooperative cancel -------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The supervised-compilation primitive (DESIGN.md §14): a budget token a
/// compilation carries through every layer that does work, with *dual
/// clocks*:
///
///  * **Deterministic work units** — charged from per-pass IR deltas (a pure
///    function of what the pass did, identical across sync / async /
///    deterministic execution), so `--compile-deadline=<units>` is usable in
///    `--jit-mode=deterministic` without breaking the bit-identical
///    compile-stream contract.
///  * **Wall clock** — an optional real-time deadline for server deployments
///    (`--compile-deadline-ms`) and the fuzz oracle's watchdog. Inherently
///    nondeterministic; never consulted by deterministic-mode budgets.
///
/// plus an **IR-node quota** (peak function size during compilation — the
/// memory analogue of the deadline) and an asynchronous **cancel request**
/// (deopt invalidated the method, the cache evicted it, the pool is shutting
/// down — the work's result is already garbage).
///
/// The protocol is cooperative: work loops call `checkpoint()` at natural
/// boundaries (before each pass, between trial expansions) and the token
/// throws `DeadlineExceeded` / `ResourceExhausted` when a clock or quota has
/// tripped. Throwing is what makes over-deadline compiles safe: every
/// compilation operates on private clones and memo caches insert only after
/// their unit of work completes, so stack unwinding discards partial IR
/// without poisoning shared state. Pure polls (`expired()`) are provided for
/// loops that must not unwind (the interpreter's step loop traps instead of
/// throwing).
///
/// Thread model: the owning worker charges; any thread may `requestCancel()`.
/// All counters are atomics with relaxed ordering — a cancel observed one
/// checkpoint late is within the cooperative contract.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_SUPPORT_CANCELLATION_H
#define INCLINE_SUPPORT_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace incline::support {

/// Thrown by CancellationToken::checkpoint() when the deterministic work
/// budget, the wall-clock deadline, or a cancel request fires. Callers that
/// supervise compilations catch it and classify via the token's state
/// (`cancelRequested()` distinguishes a cancel from a genuine deadline).
class DeadlineExceeded : public std::runtime_error {
public:
  explicit DeadlineExceeded(const std::string &What)
      : std::runtime_error(What) {}
};

/// Thrown by CancellationToken::checkpoint() when the IR-node quota is
/// exceeded; also what CompileWorkerPool maps std::bad_alloc to. A resource
/// failure, not a compiler bug: the supervisor degrades instead of striking.
class ResourceExhausted : public std::runtime_error {
public:
  explicit ResourceExhausted(const std::string &What)
      : std::runtime_error(What) {}
};

/// One compilation's budget + cancel state. See file comment.
class CancellationToken {
public:
  struct Budgets {
    /// Deterministic work-unit budget; 0 = unbounded. Units are charged by
    /// executePass from the pass's IR delta (see chargeFor below).
    uint64_t WorkUnits = 0;
    /// Wall-clock deadline in milliseconds from arm time; 0 = none.
    uint64_t WallMillis = 0;
    /// Peak live IR-node quota; 0 = unbounded.
    uint64_t NodeQuota = 0;
  };

  CancellationToken() { arm(); }
  explicit CancellationToken(Budgets B) : Limits(B) { arm(); }

  /// Convenience for wall-clock-only watchdogs (the fuzz oracle): a token
  /// whose sole clock is \p Seconds of wall time. Non-positive = unlimited.
  static Budgets wallClockBudget(double Seconds) {
    Budgets B;
    if (Seconds > 0)
      B.WallMillis = static_cast<uint64_t>(Seconds * 1000.0);
    return B;
  }

  /// (Re)starts the wall clock. Constructors arm automatically; re-arm to
  /// reuse one token across sequential supervised regions.
  void arm() { WallStart = std::chrono::steady_clock::now(); }

  //===--------------------------------------------------------------------===//
  // Charging (owning worker).
  //===--------------------------------------------------------------------===//

  /// Adds \p Units of deterministic work. Saturating; never throws — the
  /// next checkpoint reports the overrun.
  void charge(uint64_t Units) {
    WorkUsed.fetch_add(Units, std::memory_order_relaxed);
  }

  /// The canonical work-unit cost of one pass run over a function whose
  /// size changed by \p IRAdded/\p IRRemoved: a pure function of the IR
  /// delta, so identical across execution modes.
  static uint64_t passRunUnits(uint64_t IRAdded, uint64_t IRRemoved) {
    return 1 + IRAdded + IRRemoved;
  }

  /// Records a peak-live-IR observation of \p Nodes for the node quota.
  void noteNodes(uint64_t Nodes) {
    uint64_t Prev = PeakNodes.load(std::memory_order_relaxed);
    while (Nodes > Prev &&
           !PeakNodes.compare_exchange_weak(Prev, Nodes,
                                            std::memory_order_relaxed)) {
    }
  }

  //===--------------------------------------------------------------------===//
  // Checkpoints.
  //===--------------------------------------------------------------------===//

  /// Cooperative cancellation point: throws DeadlineExceeded (work budget,
  /// wall deadline, or cancel request) or ResourceExhausted (node quota),
  /// tagging the message with \p Where. Cheap when nothing tripped.
  void checkpoint(std::string_view Where) const;

  /// Pure poll of every clock (for loops that trap instead of unwinding,
  /// e.g. the interpreter's step budget check). True once any clock or a
  /// cancel request has fired. Never throws.
  bool expired() const {
    return cancelRequested() || workExpired() || nodesExpired() ||
           wallExpired();
  }

  bool workExpired() const {
    return Limits.WorkUnits != 0 &&
           WorkUsed.load(std::memory_order_relaxed) > Limits.WorkUnits;
  }
  bool nodesExpired() const {
    return Limits.NodeQuota != 0 &&
           PeakNodes.load(std::memory_order_relaxed) > Limits.NodeQuota;
  }
  bool wallExpired() const {
    if (Limits.WallMillis == 0)
      return false;
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - WallStart);
    return static_cast<uint64_t>(Elapsed.count()) > Limits.WallMillis;
  }

  //===--------------------------------------------------------------------===//
  // Cancellation (any thread).
  //===--------------------------------------------------------------------===//

  void requestCancel() { Cancelled.store(true, std::memory_order_relaxed); }
  bool cancelRequested() const {
    return Cancelled.load(std::memory_order_relaxed);
  }

  //===--------------------------------------------------------------------===//
  // Introspection.
  //===--------------------------------------------------------------------===//

  const Budgets &limits() const { return Limits; }
  uint64_t workUsed() const { return WorkUsed.load(std::memory_order_relaxed); }
  uint64_t peakNodes() const {
    return PeakNodes.load(std::memory_order_relaxed);
  }

private:
  Budgets Limits;
  std::atomic<uint64_t> WorkUsed{0};
  std::atomic<uint64_t> PeakNodes{0};
  std::atomic<bool> Cancelled{false};
  std::chrono::steady_clock::time_point WallStart;
};

} // namespace incline::support

#endif // INCLINE_SUPPORT_CANCELLATION_H
