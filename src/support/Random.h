//===- support/Random.h - Deterministic pseudo-random numbers ------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SplitMix64 generator. Every randomized component of the reproduction
/// (workload generators, property-test program generator) takes an explicit
/// seed so all experiments are bit-for-bit reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_SUPPORT_RANDOM_H
#define INCLINE_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace incline {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG with a 64-bit state.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow bound must be positive");
    // Multiply-shift rejection-free mapping (slight bias is irrelevant for
    // workload generation; determinism is what matters).
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "invalid range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability \p P.
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

  /// Picks an index according to non-negative \p Weights (must not all be 0).
  size_t nextWeighted(const std::vector<double> &Weights);

private:
  uint64_t State;
};

} // namespace incline

#endif // INCLINE_SUPPORT_RANDOM_H
