//===- support/Statistics.h - Summary statistics for benchmarking --------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mean / standard deviation / geometric mean helpers used by the benchmark
/// harness, matching the paper's reporting (mean and stddev over 5 JVM
/// instances; geomean ratios in Table I).
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_SUPPORT_STATISTICS_H
#define INCLINE_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace incline {

/// Arithmetic mean of \p Xs; 0 for an empty sample.
double mean(const std::vector<double> &Xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
double stddev(const std::vector<double> &Xs);

/// Geometric mean; all samples must be positive. 0 for an empty sample.
double geomean(const std::vector<double> &Xs);

/// Minimum / maximum; undefined for an empty sample (asserts).
double minOf(const std::vector<double> &Xs);
double maxOf(const std::vector<double> &Xs);

/// Mean of the last max(1, min(Cap, ceil(Fraction * n))) elements — the
/// paper's "average of the last 40% (but at most 20) repetitions".
double steadyStateMean(const std::vector<double> &Xs, double Fraction = 0.4,
                       size_t Cap = 20);

} // namespace incline

#endif // INCLINE_SUPPORT_STATISTICS_H
