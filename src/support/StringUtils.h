//===- support/StringUtils.h - Small string helpers ----------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal string manipulation helpers (split/join/format) used by the IR
/// printer, diagnostics, and the benchmark tables.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_SUPPORT_STRINGUTILS_H
#define INCLINE_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace incline {

/// Splits \p Text on \p Sep; empty pieces are kept.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Joins \p Parts with \p Sep between elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if \p Text starts with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

} // namespace incline

#endif // INCLINE_SUPPORT_STRINGUTILS_H
