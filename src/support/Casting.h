//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ------------------===//
//
// Part of the Incline project, a reproduction of the CGO'19 paper
// "An Optimization-Driven Incremental Inline Substitution Algorithm for
// Just-in-Time Compilers".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the style of llvm/Support/Casting.h. A class opts in
/// by providing `static bool classof(const Base *)`. This avoids C++ RTTI
/// while keeping checked downcasts cheap and explicit.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_SUPPORT_CASTING_H
#define INCLINE_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace incline {

/// Returns true if \p Val is an instance of any of the types \p To...
template <typename To, typename... Rest, typename From>
bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  if constexpr (sizeof...(Rest) == 0)
    return To::classof(Val);
  else
    return To::classof(Val) || isa<Rest...>(Val);
}

/// Checked downcast: asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (returns false).
template <typename To, typename... Rest, typename From>
bool isa_and_present(const From *Val) {
  return Val && isa<To, Rest...>(Val);
}

/// Like dyn_cast<>, but tolerates a null pointer (propagates it).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace incline

#endif // INCLINE_SUPPORT_CASTING_H
