//===- support/ErrorHandling.cpp ------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace incline;

void incline::reportFatalError(std::string_view Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "incline fatal error: %.*s (at %s:%u)\n",
               static_cast<int>(Msg.size()), Msg.data(), File, Line);
  std::abort();
}

void incline::inclineUnreachableInternal(const char *Msg, const char *File,
                                         unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed: %s (at %s:%u)\n",
               Msg ? Msg : "<no message>", File, Line);
  std::abort();
}
