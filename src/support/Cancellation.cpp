//===- support/Cancellation.cpp ----------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Cancellation.h"

#include "support/StringUtils.h"

using namespace incline;
using namespace incline::support;

void CancellationToken::checkpoint(std::string_view Where) const {
  // Order matters for classification: a cancel request wins over an expired
  // clock (the supervisor treats cancels as neutral, deadlines as ladder
  // events), and the node quota is reported as a resource failure.
  if (cancelRequested())
    throw DeadlineExceeded(
        formatString("compilation cancelled at %.*s",
                     static_cast<int>(Where.size()), Where.data()));
  if (nodesExpired())
    throw ResourceExhausted(formatString(
        "IR-node quota exceeded at %.*s: peak %llu > quota %llu",
        static_cast<int>(Where.size()), Where.data(),
        static_cast<unsigned long long>(peakNodes()),
        static_cast<unsigned long long>(Limits.NodeQuota)));
  if (workExpired())
    throw DeadlineExceeded(formatString(
        "compile deadline exceeded at %.*s: %llu work units > budget %llu",
        static_cast<int>(Where.size()), Where.data(),
        static_cast<unsigned long long>(workUsed()),
        static_cast<unsigned long long>(Limits.WorkUnits)));
  if (wallExpired())
    throw DeadlineExceeded(formatString(
        "compile wall-clock deadline exceeded at %.*s (limit %llu ms)",
        static_cast<int>(Where.size()), Where.data(),
        static_cast<unsigned long long>(Limits.WallMillis)));
}
