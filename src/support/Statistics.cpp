//===- support/Statistics.cpp ---------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace incline;

double incline::mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  double Sum = 0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

double incline::stddev(const std::vector<double> &Xs) {
  if (Xs.size() < 2)
    return 0;
  double M = mean(Xs);
  double SumSq = 0;
  for (double X : Xs)
    SumSq += (X - M) * (X - M);
  return std::sqrt(SumSq / static_cast<double>(Xs.size() - 1));
}

double incline::geomean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0;
  double LogSum = 0;
  for (double X : Xs) {
    assert(X > 0 && "geomean requires positive samples");
    LogSum += std::log(X);
  }
  return std::exp(LogSum / static_cast<double>(Xs.size()));
}

double incline::minOf(const std::vector<double> &Xs) {
  assert(!Xs.empty() && "minOf of empty sample");
  return *std::min_element(Xs.begin(), Xs.end());
}

double incline::maxOf(const std::vector<double> &Xs) {
  assert(!Xs.empty() && "maxOf of empty sample");
  return *std::max_element(Xs.begin(), Xs.end());
}

double incline::steadyStateMean(const std::vector<double> &Xs, double Fraction,
                                size_t Cap) {
  if (Xs.empty())
    return 0;
  size_t Window = static_cast<size_t>(
      std::ceil(Fraction * static_cast<double>(Xs.size())));
  Window = std::max<size_t>(1, std::min(Window, Cap));
  Window = std::min(Window, Xs.size());
  std::vector<double> Tail(Xs.end() - static_cast<long>(Window), Xs.end());
  return mean(Tail);
}
