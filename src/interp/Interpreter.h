//===- interp/Interpreter.h - IR execution engine --------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes IR directly. The interpreter plays three roles in the
/// reproduction:
///
///  1. the VM's interpreted tier — collects branch/receiver/invocation
///     profiles exactly like HotSpot's profiling interpreter;
///  2. the "hardware" — compiled methods are *also* executed here, but
///     against the compiled-tier cost model (no dispatch cost), so a
///     method's simulated cycles drop after JIT compilation the way
///     wall-clock time drops on the paper's testbed;
///  3. the semantic oracle — differential tests compare program output and
///     results across optimization levels and inliner policies.
///
/// Which body (source or compiled) runs for a callee, and whether its entry
/// is counted for hotness, is delegated to an ExecutionEnv — the JIT
/// runtime implements it; tests use the default module-only env.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_INTERP_INTERPRETER_H
#define INCLINE_INTERP_INTERPRETER_H

#include "interp/CostModel.h"
#include "interp/Heap.h"
#include "interp/RtValue.h"
#include "ir/Module.h"
#include "profile/ProfileData.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace incline::support {
class CancellationToken;
} // namespace incline::support

namespace incline::interp {

class DecodedCache;

/// Which execution core runs the frames.
enum class InterpMode : uint8_t {
  /// Pre-decoded bodies: dense slot frames, per-edge phi move lists,
  /// polymorphic inline caches, interned profile handles (the default).
  Fast,
  /// The original map-frame core, kept runtime-selectable as the
  /// differential oracle's semantic baseline (`--interp=reference`).
  Reference,
};

/// Execution-core options. Semantics, program output, traps, cycle totals
/// and recorded profile *content* are identical across every setting — only
/// host-side speed differs (asserted by the interp-fast differential stage).
struct InterpOptions {
  InterpMode Mode = InterpMode::Fast;
  /// Polymorphic inline caches at VirtualCall sites (Fast mode only).
  /// The ablation bench disables this to isolate the PIC contribution.
  bool InlineCaches = true;
};

/// Why execution stopped abnormally.
enum class TrapKind : uint8_t {
  None,
  NullPointer,
  IndexOutOfBounds,
  DivisionByZero,
  ClassCastFailure,
  Deoptimization,
  StepLimitExceeded,
  StackOverflow,
  HeapExhausted,
  UnknownFunction,
};

/// Name of a trap kind for messages.
std::string_view trapKindName(TrapKind Kind);

/// The body the environment chose for a callee, plus its execution tier.
struct ResolvedBody {
  const ir::Function *F = nullptr;
  bool Compiled = false;
  /// Profile-lookup key: the *original* method name even for specialized
  /// clones (profile ids match across clones).
  std::string ProfileName;
  /// Set by the environment for interpreted bodies whose loops are OSR
  /// candidates: the interpreter then reports every taken CFG edge through
  /// onOsrEdge so the environment can count backedges and offer an OSR
  /// body. Kept false for compiled bodies and when OSR is disabled, so the
  /// common dispatch path pays nothing. A deoptimization transfer back into
  /// the baseline preserves the flag — the same C++ frame may tier up again
  /// once a replacement OSR body is compiled (the OSR <-> deopt round
  /// trip).
  bool OsrEligible = false;
};

/// Policy hook: decides which body executes for each invoked symbol and
/// observes invocations (the JIT runtime counts hotness here).
class ExecutionEnv {
public:
  virtual ~ExecutionEnv() = default;

  /// Resolves \p Symbol to an executable body. Returns a null `F` when the
  /// symbol is unknown (the interpreter traps).
  virtual ResolvedBody resolve(std::string_view Symbol) = 0;

  /// Called on every function entry *before* execution; the JIT runtime
  /// bumps hotness counters and may compile (or enqueue a background
  /// compilation) here.
  virtual void onInvoke(std::string_view Symbol) { (void)Symbol; }

  /// Safepoint poll, called at every block transition (jumps and branches,
  /// i.e. including loop back-edges). The JIT runtime publishes finished
  /// background compilations into the code cache here, so a method that
  /// finishes compiling while the mutator sits in a long-running loop is
  /// still installed promptly. Must be cheap: the default is a no-op and
  /// the JIT runtime's implementation is one atomic load when nothing
  /// completed.
  virtual void onSafepoint() {}

  /// Where interpreted-tier execution records profiles; null disables
  /// profiling.
  virtual profile::ProfileTable *profiles() { return nullptr; }

  /// Called when a frame-state deoptimization fires, after the baseline
  /// frame has been materialized and immediately before execution transfers
  /// into the baseline. \p Method is the profile name of the body that
  /// deoptimized. The JIT runtime invalidates the installed code and
  /// tracks the failed speculation here; the default env does nothing (the
  /// transfer itself is handled by the interpreter).
  virtual void onDeopt(std::string_view Method, const ir::DeoptInst &Deopt) {
    (void)Method;
    (void)Deopt;
  }

  /// Loop-entry OSR poll, called (only for bodies resolved with
  /// `OsrEligible`) right after the interpreted tier takes the CFG edge
  /// \p From -> \p To of \p Method. The JIT runtime counts hot backedges
  /// and requests OSR compilations here; returning a non-null function
  /// asks the interpreter to transfer the live frame into that OSR variant
  /// once \p To's phis have been evaluated. The returned function must be
  /// an OSR variant of \p Method anchored at \p To (entry block made of
  /// OsrEntryInsts, see ir/Instruction.h) and must stay alive for the rest
  /// of the frame's execution — the runtime parks invalidated OSR code in
  /// its graveyard exactly like deoptimized method code.
  virtual const ir::Function *onOsrEdge(std::string_view Method,
                                        const ir::BasicBlock &From,
                                        const ir::BasicBlock &To) {
    (void)Method;
    (void)From;
    (void)To;
    return nullptr;
  }

  /// Chaos hook: returning true forces the guard identified by
  /// (\p Method, \p GuardProfileId) to take its fail edge even though the
  /// class test passed. Because the fail edge deoptimizes into the baseline
  /// and re-executes the original dispatch, a forced failure must never
  /// change program output — exactly what chaos fuzzing asserts.
  virtual bool shouldForceGuardFailure(std::string_view Method,
                                       unsigned GuardProfileId) {
    (void)Method;
    (void)GuardProfileId;
    return false;
  }
};

/// Default env: runs every function from the module, interpreted, with
/// optional profile recording.
class ModuleEnv : public ExecutionEnv {
public:
  explicit ModuleEnv(const ir::Module &M,
                     profile::ProfileTable *Profiles = nullptr)
      : M(M), Profiles(Profiles) {}

  ResolvedBody resolve(std::string_view Symbol) override;
  profile::ProfileTable *profiles() override { return Profiles; }

private:
  const ir::Module &M;
  profile::ProfileTable *Profiles;
};

/// Result of one program / function execution.
struct ExecResult {
  RtValue Return = RtValue::nullVal();
  TrapKind Trap = TrapKind::None;
  std::string TrapMessage;

  /// Simulated cycles by tier (the harness applies i-cache pressure to the
  /// compiled share).
  uint64_t InterpretedCycles = 0;
  uint64_t CompiledCycles = 0;
  uint64_t Steps = 0;

  /// Program output from `print`.
  std::string Output;

  bool ok() const { return Trap == TrapKind::None; }
  uint64_t totalCycles() const { return InterpretedCycles + CompiledCycles; }
};

/// Execution limits guarding runaway programs.
struct ExecLimits {
  uint64_t MaxSteps = 500'000'000;
  size_t MaxCallDepth = 2'000;
  /// Optional execution deadline (support/Cancellation.h) — the repo's one
  /// timeout mechanism, shared with supervised compilation. Polled coarsely
  /// (every few thousand steps) so the dispatch loop stays cheap; an
  /// expired or cancelled token traps with StepLimitExceeded like the step
  /// budget. The fuzzing watchdog arms this with a wall-clock budget so a
  /// miscompiled infinite loop surfaces as a reported divergence instead of
  /// hanging the harness. Borrowed; must outlive the execution.
  const support::CancellationToken *Deadline = nullptr;
};

/// The execution engine.
class Interpreter {
public:
  /// \p SharedBodies lets a long-lived owner (the JIT runtime) share one
  /// pre-decoded body cache across runs, so decode cost is paid once per
  /// Function instead of once per execution. When null, Fast mode owns a
  /// private cache for this interpreter's lifetime.
  Interpreter(const ir::Module &M, ExecutionEnv &Env,
              const CostModel &Costs = CostModel(),
              const ExecLimits &Limits = ExecLimits(),
              InterpOptions Opts = InterpOptions(),
              DecodedCache *SharedBodies = nullptr);
  ~Interpreter();

  /// Runs `Symbol(Args...)` to completion.
  ExecResult run(std::string_view Symbol,
                 const std::vector<RtValue> &Args = {});

  Heap &heap() { return TheHeap; }

private:
  const ir::Module &M;
  ExecutionEnv &Env;
  CostModel Costs;
  ExecLimits Limits;
  Heap TheHeap;
  InterpOptions Opts;
  DecodedCache *Bodies = nullptr; ///< Borrowed, or OwnedBodies.get().
  std::unique_ptr<DecodedCache> OwnedBodies;
};

/// Convenience for tests: compile-free single-shot execution of `main` with
/// fresh state, returning the result (output, cycles, trap).
ExecResult runMain(const ir::Module &M,
                   profile::ProfileTable *Profiles = nullptr,
                   InterpOptions Opts = InterpOptions());

} // namespace incline::interp

#endif // INCLINE_INTERP_INTERPRETER_H
