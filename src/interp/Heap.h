//===- interp/Heap.h - Object and array heap ---------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple non-collected heap: objects (class id + field slots) and arrays.
/// MiniOO benchmark workloads are bounded, so allocation without reclamation
/// is adequate; a cap guards runaway programs.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_INTERP_HEAP_H
#define INCLINE_INTERP_HEAP_H

#include "interp/RtValue.h"
#include "types/ClassHierarchy.h"

#include <vector>

namespace incline::interp {

/// An allocated object instance.
struct RtObject {
  int ClassId = types::NullClassId;
  std::vector<RtValue> Fields;
};

/// An allocated array.
struct RtArray {
  bool IntElements = true;
  std::vector<RtValue> Elems;
};

/// The interpreter heap. References are dense indices into the two stores.
class Heap {
public:
  explicit Heap(const types::ClassHierarchy &Classes) : Classes(Classes) {}

  /// Allocates an instance of \p ClassId with default-initialized fields
  /// (0 / false / null per declared field type).
  size_t allocObject(int ClassId);

  /// Allocates an array of \p Length default elements.
  size_t allocArray(bool IntElements, int64_t Length);

  RtObject &object(size_t Ref) { return Objects[Ref]; }
  const RtObject &object(size_t Ref) const { return Objects[Ref]; }
  RtArray &array(size_t Ref) { return Arrays[Ref]; }
  const RtArray &array(size_t Ref) const { return Arrays[Ref]; }

  size_t numObjects() const { return Objects.size(); }
  size_t numArrays() const { return Arrays.size(); }

  /// Total allocations cap; the interpreter traps when exceeded.
  bool exhausted() const {
    return Objects.size() + Arrays.size() > MaxAllocations;
  }

  static constexpr size_t MaxAllocations = 50'000'000;

private:
  const types::ClassHierarchy &Classes;
  std::vector<RtObject> Objects;
  std::vector<RtArray> Arrays;
};

} // namespace incline::interp

#endif // INCLINE_INTERP_HEAP_H
