//===- interp/DecodedBody.h - Pre-decoded execution tables -----------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tier-0 speed layer (DESIGN.md §13): a per-`ir::Function` pre-decoded
/// body computed once and cached, so the interpreter's hot loop touches no
/// hash map, allocates nothing, and resolves no string-keyed profile:
///
///  * **Dense slots** — every argument and non-void instruction gets a
///    frame slot; frames become `std::vector<RtValue>` indexed by slot.
///    Constants occupy a read-only tail of the frame (copied from the
///    decoded constant pool at frame creation), so *every* operand read is
///    one unconditional vector index.
///
///  * **Pre-resolved phi moves** — per (block, predecessor edge) move
///    lists replace the per-iteration `BasicBlock::phis()` allocation and
///    per-phi incoming-value scans. Duplicate predecessor edges are
///    deduplicated (a phi's incoming value is identical across them).
///
///  * **Polymorphic inline caches** — each VirtualCall site owns a small
///    fixed-width ClassId -> MethodInfo* cache that doubles as the
///    receiver-profile recording site: a hit bumps the interned receiver
///    count, a miss falls through to `ClassHierarchy::resolveMethod` and
///    (on success) records + fills the cache. Profile *content* stays
///    bit-equal to the reference interpreter's tables.
///
///  * **Interned profile handles** — the `MethodProfile&` plus per-site
///    branch/receiver entries are resolved once and cached here.
///    `ProfileTable::decay()` erases zeroed inner entries, so every cached
///    handle is guarded by the table's `decayEpoch()`: `ensureFresh()`
///    compares (table pointer, epoch) and flushes all caches on mismatch.
///
/// Lifetime: a `DecodedCache` keys bodies by `Function::uniqueId()`, which
/// is process-unique and never reused — and the runtime's code-cache
/// graveyard keeps every retired `ir::Function` alive until runtime
/// destruction, so a cached body can never dangle mid-run. Decoded tables
/// bake the cost model's per-op costs, so one cache must only ever serve
/// one `CostModel` (the runtime always uses the default).
///
/// Threading: decoded tables are immutable after construction; the mutable
/// profile caches (PICs, interned handles) are touched only by the mutator
/// thread, like every other runtime profile structure. Compile workers see
/// profile snapshots, never this cache.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_INTERP_DECODEDBODY_H
#define INCLINE_INTERP_DECODEDBODY_H

#include "interp/CostModel.h"
#include "interp/RtValue.h"
#include "ir/Instruction.h"
#include "profile/ProfileData.h"
#include "types/ClassHierarchy.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace incline::interp {

/// One function's pre-decoded execution tables plus its per-site profile
/// caches. Produced by DecodedCache::bodyFor; immutable except for the
/// profile-cache section at the bottom.
class DecodedBody {
public:
  /// Poison marker for Debug frames: a Kind value no real RtValue carries.
  /// Reading a poisoned slot means use-before-def slipped past the
  /// verifier; the slot-frame path asserts on it (mirroring the reference
  /// path's eval assert) while Release reads a defined value.
  static constexpr auto PoisonKind = static_cast<RtValue::Kind>(0xEE);

  /// Fixed PIC width before a site goes megamorphic (falls through to
  /// resolveMethod on every new class while still recording).
  static constexpr unsigned PicWidth = 4;

  /// One decoded non-phi instruction. Operand references index the frame
  /// directly (value slots first, then the constant tail).
  struct Inst {
    const ir::Instruction *I = nullptr; ///< For slow paths and profileIds.
    ir::ValueKind Kind;
    uint8_t Sub = 0;      ///< BinOp/UnOp opcode.
    int32_t Dest = -1;    ///< Result slot; -1 for void results.
    uint32_t FirstOp = 0; ///< Index into Ops.
    uint32_t NumOps = 0;
    uint32_t Cost = 0;    ///< CostModel::opCost, baked at decode.
    int32_t A = 0;        ///< fieldSlot/classId/isIntArray aux payload.
    uint32_t ProfileSlot = 0; ///< BranchCache (Branch) / Pics (VirtualCall).
    uint32_t S0 = 0, S1 = 0;  ///< Successor decoded-block indices.
  };

  /// One pre-resolved phi move: frame[Dest] = frame[Src] (parallel within
  /// an edge's move list — the executor stages reads before writes).
  struct PhiMove {
    int32_t Dest = 0;
    int32_t Src = 0;
  };

  /// The move list of one deduplicated predecessor edge.
  struct Edge {
    const ir::BasicBlock *Pred = nullptr;
    uint32_t MovesBegin = 0;
    uint32_t MovesCount = 0;
  };

  struct Block {
    const ir::BasicBlock *BB = nullptr;
    uint32_t FirstInst = 0; ///< Index into Insts (phis excluded).
    uint32_t NumInsts = 0;
    uint32_t FirstEdge = 0;
    uint32_t NumEdges = 0;
    uint32_t NumPhis = 0;
  };

  /// One leading OsrEntryInst of an OSR variant's entry block, decoded to
  /// "destination slot <- baseline frame-state slot".
  struct OsrEntryDesc {
    int32_t DestSlot = 0;
    ir::FrameStateSlot Source;
  };

  DecodedBody(const ir::Function &F, const CostModel &Costs);

  const ir::Function &function() const { return *F; }
  uint32_t numValueSlots() const { return NumSlots; }
  uint32_t frameSize() const { return NumSlots + uint32_t(ConstPool.size()); }

  /// A fresh frame: value slots null (poisoned past the arguments in
  /// Debug), constant tail pre-filled.
  std::vector<RtValue> makeFrame(size_t NumArgs) const {
    std::vector<RtValue> Frame(frameSize());
#ifndef NDEBUG
    for (uint32_t S = uint32_t(NumArgs); S < NumSlots; ++S)
      Frame[S].K = PoisonKind;
#else
    (void)NumArgs;
#endif
    for (size_t C = 0; C < ConstPool.size(); ++C)
      Frame[NumSlots + C] = ConstPool[C];
    return Frame;
  }

  /// Decoded index of block id \p Id, or -1. Block ids are dense but not
  /// guaranteed to equal their position.
  int32_t blockIndexOf(unsigned Id) const {
    return Id < BlockById.size() ? BlockById[Id] : -1;
  }

  /// Frame slot of the non-void instruction with \p ProfileId, or -1.
  int32_t slotOfProfileId(unsigned ProfileId) const {
    return ProfileId < SlotByProfileId.size() ? SlotByProfileId[ProfileId]
                                              : -1;
  }

  //===--------------------------------------------------------------------===//
  // Immutable decode tables (filled by the constructor).
  //===--------------------------------------------------------------------===//

  std::vector<Inst> Insts;
  std::vector<int32_t> Ops; ///< Operand frame indices, NumOps per Inst.
  std::vector<PhiMove> Moves;
  std::vector<Edge> Edges;
  std::vector<Block> Blocks;
  std::vector<RtValue> ConstPool;
  std::vector<int32_t> BlockById;
  std::vector<int32_t> SlotByProfileId;
  std::vector<OsrEntryDesc> OsrEntries;
  uint32_t OsrLeadCount = 0;

  //===--------------------------------------------------------------------===//
  // Mutator-owned profile caches (interned handles + PICs). Guarded by
  // (PTable, PEpoch): decay()/clear() bump the table's epoch and every
  // recording site calls ensureFresh() before touching a cached pointer.
  //===--------------------------------------------------------------------===//

  struct Pic {
    struct Entry {
      int ClassId = 0;
      const types::MethodInfo *Target = nullptr;
      /// Interned &ReceiverProfile::Counts[ClassId]; null when the body
      /// executes unprofiled (hits still dispatch, nothing is recorded).
      uint64_t *Count = nullptr;
    };
    Entry E[PicWidth];
    uint8_t Size = 0;
    /// Interned receiver histogram of this site (megamorphic fallthrough
    /// and the no-PIC ablation record through it).
    profile::ReceiverProfile *RP = nullptr;
  };

  profile::ProfileTable *PTable = nullptr;
  uint64_t PEpoch = 0;
  profile::MethodProfile *MP = nullptr;
  std::vector<profile::BranchProfile *> BranchCache; ///< One per Branch.
  std::vector<Pic> Pics;                             ///< One per VirtualCall.

  /// Revalidates every interned handle against \p Profiles and its decay
  /// epoch; flushes all caches when either moved. Cheap on the fast path:
  /// two compares.
  void ensureFresh(profile::ProfileTable *Profiles) {
    uint64_t Epoch = Profiles ? Profiles->decayEpoch() : 0;
    if (PTable == Profiles && PEpoch == Epoch)
      return;
    flushProfileCaches(Profiles, Epoch);
  }

private:
  void flushProfileCaches(profile::ProfileTable *Profiles, uint64_t Epoch);

  const ir::Function *F = nullptr;
  uint32_t NumSlots = 0;
};

/// Cache of decoded bodies keyed by `Function::uniqueId()` (process-unique,
/// never reused). The JIT runtime owns one per runtime; a standalone
/// Interpreter owns a private one. Values are heap-allocated so pointers
/// held by executing frames survive rehashing.
class DecodedCache {
public:
  /// The decoded body of \p F, decoding on first touch. \p Costs must be
  /// the same model for every call on one cache (costs are baked in).
  DecodedBody &bodyFor(const ir::Function &F, const CostModel &Costs);

  size_t size() const { return Bodies.size(); }

private:
  std::unordered_map<uint64_t, std::unique_ptr<DecodedBody>> Bodies;
};

} // namespace incline::interp

#endif // INCLINE_INTERP_DECODEDBODY_H
