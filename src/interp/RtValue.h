//===- interp/RtValue.h - Runtime values -------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter's value representation: 64-bit ints, bools, null, and
/// references into the heap (objects and arrays).
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_INTERP_RTVALUE_H
#define INCLINE_INTERP_RTVALUE_H

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace incline::interp {

/// A dynamically typed runtime value.
struct RtValue {
  enum class Kind : uint8_t { Int, Bool, Null, Object, Array };

  Kind K = Kind::Null;
  int64_t I = 0;  ///< Int payload, or 0/1 for Bool.
  size_t Ref = 0; ///< Heap index for Object/Array.

  static RtValue intVal(int64_t V) { return {Kind::Int, V, 0}; }
  static RtValue boolVal(bool V) { return {Kind::Bool, V ? 1 : 0, 0}; }
  static RtValue nullVal() { return {Kind::Null, 0, 0}; }
  static RtValue objectVal(size_t Ref) { return {Kind::Object, 0, Ref}; }
  static RtValue arrayVal(size_t Ref) { return {Kind::Array, 0, Ref}; }

  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isReference() const { return isNull() || isObject() || isArray(); }

  int64_t asInt() const {
    assert(isInt() && "not an int");
    return I;
  }
  bool asBool() const {
    assert(isBool() && "not a bool");
    return I != 0;
  }

  /// Reference identity / primitive equality — MiniOO `==` semantics.
  bool equals(const RtValue &Other) const {
    if (isNull() && Other.isNull())
      return true;
    if (K != Other.K)
      return false;
    switch (K) {
    case Kind::Int:
    case Kind::Bool:
      return I == Other.I;
    case Kind::Object:
    case Kind::Array:
      return Ref == Other.Ref;
    case Kind::Null:
      return true;
    }
    return false;
  }
};

} // namespace incline::interp

#endif // INCLINE_INTERP_RTVALUE_H
