//===- interp/DecodedBody.cpp - Pre-decoded execution tables ---------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/DecodedBody.h"

#include "ir/Function.h"
#include "support/Casting.h"

#include <unordered_map>

using namespace incline;
using namespace incline::interp;

DecodedBody::DecodedBody(const ir::Function &Fn, const CostModel &Costs)
    : F(&Fn) {
  // Pass 1: assign a dense frame slot to every argument and every non-void
  // value (phis included), function-wide, so operands defined in later
  // blocks (phi inputs along backedges) already have slots in pass 2.
  std::unordered_map<const ir::Value *, int32_t> SlotOf;
  for (const auto &Arg : Fn.args())
    SlotOf[Arg.get()] = int32_t(NumSlots++);
  SlotByProfileId.assign(Fn.nextProfileIdWatermark(), -1);
  for (const auto &BB : Fn.blocks())
    for (const auto &I : BB->instructions())
      if (!I->type().isVoid()) {
        int32_t Slot = int32_t(NumSlots++);
        SlotOf[I.get()] = Slot;
        if (I->profileId() < SlotByProfileId.size())
          SlotByProfileId[I->profileId()] = Slot;
      }

  // Constants live in a read-only tail after the value slots, so operand
  // reads never branch on "constant or not".
  std::unordered_map<const ir::Value *, int32_t> ConstRef;
  auto refOf = [&](const ir::Value *V) -> int32_t {
    auto It = SlotOf.find(V);
    if (It != SlotOf.end())
      return It->second;
    auto [CIt, New] = ConstRef.try_emplace(V, 0);
    if (New) {
      CIt->second = int32_t(NumSlots + ConstPool.size());
      if (const auto *CI = dyn_cast<ir::ConstInt>(V))
        ConstPool.push_back(RtValue::intVal(CI->value()));
      else if (const auto *CB = dyn_cast<ir::ConstBool>(V))
        ConstPool.push_back(RtValue::boolVal(CB->value()));
      else {
        assert(isa<ir::ConstNull>(V) && "operand is neither slotted nor a "
                                        "constant");
        ConstPool.push_back(RtValue::nullVal());
      }
    }
    return CIt->second;
  };

  BlockById.assign(Fn.blocks().size(), -1);
  for (const auto &BB : Fn.blocks()) {
    if (BB->id() >= BlockById.size())
      BlockById.resize(BB->id() + 1, -1);
    BlockById[BB->id()] = int32_t(Blocks.size());
    Blocks.push_back({});
    Blocks.back().BB = BB.get();
  }
  auto blockIdx = [&](const ir::BasicBlock *BB) {
    int32_t Idx = BlockById[BB->id()];
    assert(Idx >= 0);
    return uint32_t(Idx);
  };

  // Pass 2: decode phis into per-edge move lists and everything else into
  // the flat instruction table.
  uint32_t NumBranches = 0, NumVCalls = 0;
  for (size_t BI = 0; BI < Fn.blocks().size(); ++BI) {
    const ir::BasicBlock &BB = *Fn.blocks()[BI];
    Block &Blk = Blocks[BI];

    size_t PhiEnd = 0;
    while (PhiEnd < BB.instructions().size() &&
           BB.instructions()[PhiEnd]->kind() == ir::ValueKind::Phi)
      ++PhiEnd;
    Blk.NumPhis = uint32_t(PhiEnd);

    // One move list per *unique* predecessor: `predecessors()` repeats a
    // block once per edge, but a phi's incoming value is the same along
    // duplicate edges, so one list serves them all.
    Blk.FirstEdge = uint32_t(Edges.size());
    for (const ir::BasicBlock *Pred : BB.predecessors()) {
      bool Seen = false;
      for (uint32_t E = Blk.FirstEdge; E < Edges.size() && !Seen; ++E)
        Seen = Edges[E].Pred == Pred;
      if (Seen)
        continue;
      Edge Ed;
      Ed.Pred = Pred;
      Ed.MovesBegin = uint32_t(Moves.size());
      for (size_t P = 0; P < PhiEnd; ++P) {
        const auto *Phi = cast<ir::PhiInst>(BB.instructions()[P].get());
        ir::Value *In = Phi->incomingValueFor(Pred);
        assert(In && "phi lacks an incoming value for a predecessor");
        Moves.push_back({SlotOf.at(Phi), refOf(In)});
      }
      Ed.MovesCount = uint32_t(Moves.size()) - Ed.MovesBegin;
      Edges.push_back(Ed);
    }
    Blk.NumEdges = uint32_t(Edges.size()) - Blk.FirstEdge;

    Blk.FirstInst = uint32_t(Insts.size());
    for (size_t II = PhiEnd; II < BB.instructions().size(); ++II) {
      const ir::Instruction &I = *BB.instructions()[II];
      Inst DI;
      DI.I = &I;
      DI.Kind = I.kind();
      DI.Cost = uint32_t(Costs.opCost(I));
      if (auto It = SlotOf.find(&I); It != SlotOf.end())
        DI.Dest = It->second;
      DI.FirstOp = uint32_t(Ops.size());
      for (ir::Value *Op : I.operands())
        Ops.push_back(refOf(Op));
      DI.NumOps = uint32_t(Ops.size()) - DI.FirstOp;

      switch (I.kind()) {
      case ir::ValueKind::BinOp:
        DI.Sub = uint8_t(cast<ir::BinOpInst>(&I)->opcode());
        break;
      case ir::ValueKind::UnOp:
        DI.Sub = uint8_t(cast<ir::UnOpInst>(&I)->opcode());
        break;
      case ir::ValueKind::NewObject:
        DI.A = cast<ir::NewObjectInst>(&I)->classId();
        break;
      case ir::ValueKind::NewArray:
        DI.A = I.type().isIntArray() ? 1 : 0;
        break;
      case ir::ValueKind::LoadField:
        DI.A = int32_t(cast<ir::LoadFieldInst>(&I)->fieldSlot());
        break;
      case ir::ValueKind::StoreField:
        DI.A = int32_t(cast<ir::StoreFieldInst>(&I)->fieldSlot());
        break;
      case ir::ValueKind::InstanceOf:
        DI.A = cast<ir::InstanceOfInst>(&I)->testClassId();
        break;
      case ir::ValueKind::CheckCast:
        DI.A = cast<ir::CheckCastInst>(&I)->targetClassId();
        break;
      case ir::ValueKind::Branch: {
        const auto *Br = cast<ir::BranchInst>(&I);
        DI.ProfileSlot = NumBranches++;
        DI.S0 = blockIdx(Br->trueSuccessor());
        DI.S1 = blockIdx(Br->falseSuccessor());
        break;
      }
      case ir::ValueKind::Jump:
        DI.S0 = blockIdx(cast<ir::JumpInst>(&I)->target());
        break;
      case ir::ValueKind::Guard: {
        const auto *G = cast<ir::GuardInst>(&I);
        DI.A = G->expectedClassId();
        DI.S0 = blockIdx(G->passSuccessor());
        DI.S1 = blockIdx(G->failSuccessor());
        break;
      }
      case ir::ValueKind::VirtualCall:
        DI.ProfileSlot = NumVCalls++;
        break;
      default:
        break;
      }
      Insts.push_back(DI);
    }
    Blk.NumInsts = uint32_t(Insts.size()) - Blk.FirstInst;
  }

  // OSR variants: decode the entry block's leading OsrEntry run so the OSR
  // transfer is a table walk. The entry block has no phis, so decoded-inst
  // index == instruction index and OsrLeadCount doubles as the post-entry
  // resume index.
  if (Fn.osrAnchor() && !Fn.blocks().empty()) {
    for (const auto &I : Fn.entry()->instructions()) {
      const auto *OE = dyn_cast<ir::OsrEntryInst>(I.get());
      if (!OE)
        break;
      OsrEntries.push_back({SlotOf.at(OE), OE->source()});
    }
    OsrLeadCount = uint32_t(OsrEntries.size());
  }

  BranchCache.assign(NumBranches, nullptr);
  Pics.assign(NumVCalls, Pic{});
}

void DecodedBody::flushProfileCaches(profile::ProfileTable *Profiles,
                                     uint64_t Epoch) {
  PTable = Profiles;
  PEpoch = Epoch;
  MP = nullptr;
  BranchCache.assign(BranchCache.size(), nullptr);
  Pics.assign(Pics.size(), Pic{});
}

DecodedBody &DecodedCache::bodyFor(const ir::Function &F,
                                   const CostModel &Costs) {
  auto It = Bodies.find(F.uniqueId());
  if (It == Bodies.end())
    It = Bodies
             .emplace(F.uniqueId(), std::make_unique<DecodedBody>(F, Costs))
             .first;
  return *It->second;
}
