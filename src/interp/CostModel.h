//===- interp/CostModel.h - The simulated hardware -----------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic cycle cost model that substitutes for the paper's
/// Intel i7 testbed. It encodes exactly the performance phenomena the
/// paper's evaluation depends on:
///
///  * interpreted code pays a per-instruction dispatch cost, compiled code
///    does not (the benefit of compilation);
///  * every non-inlined call pays a frame/argument overhead, virtual calls
///    pay an additional dispatch overhead, and typeswitch tests are cheap
///    (the benefit of inlining and of polymorphic inlining, §IV);
///  * an instruction-cache pressure term makes cycles grow once installed
///    code exceeds a budget (the non-linearity of §II.3 / McFarling [44]);
///    it is applied by the benchmark harness on top of raw compiled cycles.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_INTERP_COSTMODEL_H
#define INCLINE_INTERP_COSTMODEL_H

#include "ir/Instruction.h"

#include <algorithm>
#include <cstdint>

namespace incline::interp {

/// Per-instruction and per-event cycle costs.
struct CostModel {
  /// Added to every instruction executed in the interpreted tier.
  uint64_t InterpDispatchCost = 12;
  /// Frame setup/teardown + argument passing of a non-inlined call.
  uint64_t CallOverhead = 18;
  /// Additional overhead of dispatching a virtual call (vtable load +
  /// indirect jump + misprediction exposure).
  uint64_t VirtualDispatchOverhead = 26;
  /// One class-id comparison inside an inlined typeswitch.
  uint64_t TypeSwitchTestCost = 2;

  /// The "architectural" cost of executing one instruction, excluding
  /// dispatch/call overheads (those are charged separately).
  uint64_t opCost(const ir::Instruction &Inst) const {
    switch (Inst.kind()) {
    case ir::ValueKind::Phi:
      return 0; // Registers are renamed, phis are free.
    case ir::ValueKind::BinOp: {
      const auto &Bin = static_cast<const ir::BinOpInst &>(Inst);
      switch (Bin.opcode()) {
      case ir::BinOpInst::Opcode::Mul:
        return 3;
      case ir::BinOpInst::Opcode::Div:
      case ir::BinOpInst::Opcode::Mod:
        return 20;
      default:
        return 1;
      }
    }
    case ir::ValueKind::UnOp:
      return 1;
    case ir::ValueKind::Call:
    case ir::ValueKind::VirtualCall:
      return 1; // Overheads charged separately at the callsite.
    case ir::ValueKind::NewObject:
    case ir::ValueKind::NewArray:
      return 24; // Allocation path.
    case ir::ValueKind::LoadField:
    case ir::ValueKind::LoadIndex:
      return 3;
    case ir::ValueKind::StoreField:
    case ir::ValueKind::StoreIndex:
      return 3;
    case ir::ValueKind::ArrayLength:
      return 2;
    case ir::ValueKind::InstanceOf:
    case ir::ValueKind::CheckCast:
      return 4;
    case ir::ValueKind::GetClassId:
      return TypeSwitchTestCost;
    case ir::ValueKind::NullCheck:
      return 1;
    case ir::ValueKind::Print:
      return 40;
    case ir::ValueKind::OsrEntry:
      return 0; // Never executed: the OSR transfer materializes them.
    case ir::ValueKind::Branch:
      return 2;
    case ir::ValueKind::Guard:
      return 2; // A class-id load + compare, like a typeswitch test.
    case ir::ValueKind::Jump:
      return 1;
    case ir::ValueKind::Return:
      return 1;
    case ir::ValueKind::Deopt:
      return 500; // A deoptimization is catastrophic but survivable.
    default:
      return 1;
    }
  }

  /// Instruction-cache pressure multiplier for compiled-code cycles:
  /// 1.0 while installed code fits the budget, then grows linearly.
  /// Models §II.3's warning that excessive inlining degrades performance.
  static double icachePressure(uint64_t InstalledCodeSize,
                               uint64_t CacheBudget = DefaultICacheBudget) {
    if (InstalledCodeSize <= CacheBudget)
      return 1.0;
    double Excess = static_cast<double>(InstalledCodeSize - CacheBudget) /
                    static_cast<double>(CacheBudget);
    return 1.0 + PressureSlope * Excess;
  }

  /// Installed-code budget (in IR nodes) before i-cache pressure starts.
  /// Sits inside the suite's observed installed-code range (~100-8000
  /// nodes) so that over-inlining has a real price — the paper's §II.3
  /// non-linearity.
  static constexpr uint64_t DefaultICacheBudget = 5'000;
  static constexpr double PressureSlope = 0.5;
};

} // namespace incline::interp

#endif // INCLINE_INTERP_COSTMODEL_H
