//===- interp/Heap.cpp ---------------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Heap.h"

using namespace incline;
using namespace incline::interp;

size_t Heap::allocObject(int ClassId) {
  const std::vector<types::FieldInfo> &Layout = Classes.fieldLayout(ClassId);
  RtObject Obj;
  Obj.ClassId = ClassId;
  Obj.Fields.reserve(Layout.size());
  for (const types::FieldInfo &F : Layout) {
    if (F.Ty.isInt())
      Obj.Fields.push_back(RtValue::intVal(0));
    else if (F.Ty.isBool())
      Obj.Fields.push_back(RtValue::boolVal(false));
    else
      Obj.Fields.push_back(RtValue::nullVal());
  }
  Objects.push_back(std::move(Obj));
  return Objects.size() - 1;
}

size_t Heap::allocArray(bool IntElements, int64_t Length) {
  RtArray Arr;
  Arr.IntElements = IntElements;
  Arr.Elems.assign(static_cast<size_t>(Length),
                   IntElements ? RtValue::intVal(0) : RtValue::nullVal());
  Arrays.push_back(std::move(Arr));
  return Arrays.size() - 1;
}
