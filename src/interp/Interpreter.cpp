//===- interp/Interpreter.cpp ----------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "ir/ArithSemantics.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"
#include "support/StringUtils.h"

#include <chrono>
#include <unordered_map>

using namespace incline;
using namespace incline::interp;
using namespace incline::ir;

std::string_view incline::interp::trapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::None: return "none";
  case TrapKind::NullPointer: return "null pointer";
  case TrapKind::IndexOutOfBounds: return "index out of bounds";
  case TrapKind::DivisionByZero: return "division by zero";
  case TrapKind::ClassCastFailure: return "class cast failure";
  case TrapKind::Deoptimization: return "deoptimization";
  case TrapKind::StepLimitExceeded: return "step limit exceeded";
  case TrapKind::StackOverflow: return "stack overflow";
  case TrapKind::HeapExhausted: return "heap exhausted";
  case TrapKind::UnknownFunction: return "unknown function";
  }
  incline_unreachable("unknown trap kind");
}

ResolvedBody ModuleEnv::resolve(std::string_view Symbol) {
  ResolvedBody Body;
  Body.F = M.function(Symbol);
  Body.Compiled = false;
  Body.ProfileName = std::string(Symbol);
  return Body;
}

namespace {

/// Executes call frames. One FrameExecutor per Interpreter::run; recursion
/// into callees happens through C++ recursion (bounded by MaxCallDepth).
class FrameExecutor {
public:
  FrameExecutor(const Module &M, ExecutionEnv &Env, const CostModel &Costs,
                const ExecLimits &Limits, Heap &TheHeap, ExecResult &Result)
      : M(M), Env(Env), Costs(Costs), Limits(Limits), TheHeap(TheHeap),
        Result(Result) {}

  RtValue callFunction(std::string_view Symbol,
                       const std::vector<RtValue> &Args, size_t Depth) {
    if (Depth > Limits.MaxCallDepth) {
      trap(TrapKind::StackOverflow, std::string(Symbol));
      return RtValue::nullVal();
    }
    Env.onInvoke(Symbol);
    ResolvedBody Body = Env.resolve(Symbol);
    if (!Body.F) {
      trap(TrapKind::UnknownFunction, std::string(Symbol));
      return RtValue::nullVal();
    }
    if (!Body.Compiled) {
      if (profile::ProfileTable *Profiles = Env.profiles())
        ++Profiles->methodProfile(Body.ProfileName).InvocationCount;
    }
    return execBody(Body, Args, Depth);
  }

private:
  void trap(TrapKind Kind, std::string Context) {
    if (Result.Trap != TrapKind::None)
      return; // Keep the innermost trap.
    Result.Trap = Kind;
    Result.TrapMessage = formatString("%s (%s)",
                                      std::string(trapKindName(Kind)).c_str(),
                                      Context.c_str());
  }
  bool trapped() const { return Result.Trap != TrapKind::None; }

  void charge(uint64_t Cycles, bool Compiled) {
    if (Compiled)
      Result.CompiledCycles += Cycles;
    else
      Result.InterpretedCycles += Cycles;
  }

  RtValue execBody(ResolvedBody Body, const std::vector<RtValue> &Args,
                   size_t Depth) {
    const Function *F = Body.F;
    assert(Args.size() == F->numParams() && "argument count mismatch");
    profile::ProfileTable *Profiles =
        Body.Compiled ? nullptr : Env.profiles();

    std::unordered_map<const Value *, RtValue> Frame;
    for (size_t I = 0; I < Args.size(); ++I)
      Frame[F->arg(I)] = Args[I];

    const BasicBlock *BB = F->entry();
    const BasicBlock *PrevBB = nullptr;
    // Set by a deoptimization transfer: the next block iteration begins at
    // this instruction index (the baseline resume point) instead of at the
    // top, and phi evaluation is skipped (the materialized frame already
    // holds every live value).
    size_t ResumeIndex = 0;
    // Set by an OSR poll at a block transition: the frame transfers into
    // this OSR variant once the target block's phis have been evaluated
    // (the entry descriptors may read this iteration's phi values).
    const Function *PendingOsr = nullptr;
    while (true) {
      if (trapped())
        return RtValue::nullVal();
      if (Result.Steps > Limits.MaxSteps) {
        trap(TrapKind::StepLimitExceeded, F->name());
        return RtValue::nullVal();
      }
      if (Limits.MaxWallSeconds > 0 && Result.Steps >= NextWallCheckAt) {
        NextWallCheckAt = Result.Steps + 8192;
        std::chrono::duration<double> Wall =
            std::chrono::steady_clock::now() - WallStart;
        if (Wall.count() > Limits.MaxWallSeconds) {
          trap(TrapKind::StepLimitExceeded, "wall clock, " + F->name());
          return RtValue::nullVal();
        }
      }

      // Phis evaluate in parallel against the edge taken.
      std::vector<PhiInst *> Phis = BB->phis();
      if (ResumeIndex == 0 && !Phis.empty()) {
        assert(PrevBB && "phi in entry block");
        std::vector<RtValue> NewVals;
        NewVals.reserve(Phis.size());
        for (PhiInst *Phi : Phis) {
          Value *In = Phi->incomingValueFor(PrevBB);
          assert(In && "phi has no entry for the taken edge");
          NewVals.push_back(eval(In, Frame));
        }
        for (size_t I = 0; I < Phis.size(); ++I)
          Frame[Phis[I]] = NewVals[I];
      }
      size_t Begin = ResumeIndex > Phis.size() ? ResumeIndex : Phis.size();
      ResumeIndex = 0;

      if (PendingOsr) {
        // The loop header's phis now hold this iteration's values; hand
        // the frame to the compiled OSR body.
        const Function *Target = PendingOsr;
        PendingOsr = nullptr;
        if (!transferToOsr(Target, Body, F, BB, Frame, ResumeIndex))
          return RtValue::nullVal();
        Profiles = nullptr; // The compiled tier records no profiles.
        PrevBB = nullptr;
        continue;
      }

      for (size_t Index = Begin; Index < BB->size(); ++Index) {
        const Instruction *Inst = BB->instructions()[Index].get();
        ++Result.Steps;
        charge(Costs.opCost(*Inst), Body.Compiled);
        if (!Body.Compiled)
          charge(Costs.InterpDispatchCost, false);

        if (Inst->isTerminator()) {
          switch (Inst->kind()) {
          case ValueKind::Jump:
            PrevBB = BB;
            BB = cast<JumpInst>(Inst)->target();
            Env.onSafepoint();
            break;
          case ValueKind::Branch: {
            const auto *Br = cast<BranchInst>(Inst);
            bool Cond = eval(Br->condition(), Frame).asBool();
            if (Profiles) {
              profile::BranchProfile &BP =
                  Profiles->methodProfile(Body.ProfileName)
                      .Branches[Br->profileId()];
              if (Cond)
                ++BP.TrueCount;
              else
                ++BP.FalseCount;
            }
            PrevBB = BB;
            BB = Cond ? Br->trueSuccessor() : Br->falseSuccessor();
            Env.onSafepoint();
            break;
          }
          case ValueKind::Return: {
            const auto *Ret = cast<ReturnInst>(Inst);
            return Ret->hasValue() ? eval(Ret->returnValue(), Frame)
                                   : RtValue::nullVal();
          }
          case ValueKind::Guard: {
            const auto *G = cast<GuardInst>(Inst);
            RtValue Recv = eval(G->receiver(), Frame);
            // Null receivers fail the guard too: the baseline re-dispatch
            // then reproduces the virtual call's null-pointer trap exactly.
            bool Pass = Recv.isObject() &&
                        TheHeap.object(Recv.Ref).ClassId ==
                            G->expectedClassId();
            if (Pass && Env.shouldForceGuardFailure(Body.ProfileName,
                                                    G->profileId()))
              Pass = false;
            PrevBB = BB;
            BB = Pass ? G->passSuccessor() : G->failSuccessor();
            Env.onSafepoint();
            break;
          }
          case ValueKind::Deopt: {
            const auto *D = cast<DeoptInst>(Inst);
            if (!D->hasFrameState()) {
              // Legacy meaning: a point the compiled code believed
              // unreachable. Nothing to recover to — fatal trap.
              trap(TrapKind::Deoptimization, D->reason());
              return RtValue::nullVal();
            }
            if (!transferToBaseline(D, Body, F, BB, Frame, ResumeIndex))
              return RtValue::nullVal();
            // The transfer swapped in the baseline body; re-enter the loop
            // at the resume point with the materialized frame.
            Profiles = Env.profiles();
            PrevBB = nullptr;
            break;
          }
          default:
            incline_unreachable("unknown terminator");
          }
          // OSR-eligible interpreted bodies report every taken edge: the
          // env counts backedges there and may offer an OSR body anchored
          // at the new block. Deopt transfers clear PrevBB (no CFG edge
          // was taken) and returns leave the frame, so neither polls.
          if (Body.OsrEligible && !Body.Compiled && PrevBB)
            PendingOsr = Env.onOsrEdge(Body.ProfileName, *PrevBB, *BB);
          break; // Proceed with the next block.
        }

        RtValue V = execInstruction(Inst, Frame, Body, Depth, Profiles);
        if (trapped())
          return RtValue::nullVal();
        if (!Inst->type().isVoid())
          Frame[Inst] = V;
      }
    }
  }

  /// Deoptimization: materializes \p D's frame state into a fresh baseline
  /// frame and redirects execution — \p Body, \p F, \p BB, \p Frame and
  /// \p ResumeIndex are rewritten so the caller's loop continues in the
  /// baseline at the resume virtual call. The captured operands are read
  /// out of the compiled frame *before* anything is torn down. Returns
  /// false (after trapping) when the frame state does not resolve — the
  /// verifier rejects such code at install time, so this is defense in
  /// depth, not a supported path.
  bool transferToBaseline(const DeoptInst *D, ResolvedBody &Body,
                          const Function *&F, const BasicBlock *&BB,
                          std::unordered_map<const Value *, RtValue> &Frame,
                          size_t &ResumeIndex) {
    const FrameState &FS = D->frameState();
    const Function *Baseline = M.function(FS.BaselineSymbol);
    if (!Baseline) {
      trap(TrapKind::Deoptimization, "no baseline " + FS.BaselineSymbol);
      return false;
    }
    const BasicBlock *ResumeBB = nullptr;
    for (const auto &Blk : Baseline->blocks())
      if (Blk->id() == FS.BaselineBlockId) {
        ResumeBB = Blk.get();
        break;
      }
    const Instruction *Resume = nullptr;
    size_t Index = 0;
    if (ResumeBB)
      for (; Index < ResumeBB->size(); ++Index)
        if (ResumeBB->instructions()[Index]->profileId() == FS.ResumePoint) {
          Resume = ResumeBB->instructions()[Index].get();
          break;
        }
    if (!Resume) {
      trap(TrapKind::Deoptimization,
           "unresolved resume point in " + FS.BaselineSymbol);
      return false;
    }

    // Baseline values are named by profileId (slots) — build the lookup
    // once per deoptimization; deopts are rare by construction.
    std::unordered_map<unsigned, const Value *> BaselineValues;
    for (const auto &Blk : Baseline->blocks())
      for (const auto &Inst : Blk->instructions())
        if (!Inst->type().isVoid())
          BaselineValues[Inst->profileId()] = Inst.get();

    assert(FS.Slots.size() == D->numOperands() &&
           "frame-state slots out of sync with captured operands");
    std::unordered_map<const Value *, RtValue> NewFrame;
    for (size_t I = 0; I < FS.Slots.size() && I < D->numOperands(); ++I) {
      const FrameStateSlot &Slot = FS.Slots[I];
      const Value *Dest = nullptr;
      if (Slot.Kind == FrameStateSlot::Target::Argument) {
        if (Slot.BaselineId < Baseline->numParams())
          Dest = Baseline->arg(Slot.BaselineId);
      } else {
        auto It = BaselineValues.find(Slot.BaselineId);
        if (It != BaselineValues.end())
          Dest = It->second;
      }
      if (!Dest) {
        trap(TrapKind::Deoptimization,
             "unresolved frame-state slot in " + FS.BaselineSymbol);
        return false;
      }
      NewFrame[Dest] = eval(D->operand(I), Frame);
    }

    // Report before transferring: the JIT runtime invalidates the compiled
    // code here. The retired Function must stay alive (the runtime parks it
    // in a graveyard) because this C++ frame still references it.
    Env.onDeopt(Body.ProfileName, *D);

    Body.F = Baseline;
    Body.Compiled = false;
    Body.ProfileName = FS.BaselineSymbol;
    F = Baseline;
    BB = ResumeBB;
    Frame = std::move(NewFrame);
    ResumeIndex = Index;
    return true;
  }

  /// Loop-entry OSR: the inverse of transferToBaseline. Materializes the
  /// interpreted frame's live values into a fresh frame for \p OsrF — the
  /// arguments by index plus one value per leading OsrEntryInst, sourced
  /// per its slot descriptor — then redirects execution to the OSR body's
  /// entry block with \p ResumeIndex skipping the already-materialized
  /// entries. \p F must be the baseline the variant is anchored at and
  /// \p BB its loop header, with this iteration's phi values already in
  /// \p Frame. Returns false (after trapping) when a slot does not
  /// resolve — install-time verification (verifyOsrEntries) rejects such
  /// code, so this is defense in depth, not a supported path.
  bool transferToOsr(const Function *OsrF, ResolvedBody &Body,
                     const Function *&F, const BasicBlock *&BB,
                     std::unordered_map<const Value *, RtValue> &Frame,
                     size_t &ResumeIndex) {
    assert(OsrF->osrAnchor() && "OSR transfer into an unanchored function");
    assert(OsrF->numParams() == F->numParams() &&
           "OSR variant signature mismatch");
    // Baseline values are named by profileId (slots) — build the lookup
    // per transfer; OSR entries are rare (once per hot loop per tier-up).
    std::unordered_map<unsigned, const Value *> BaselineValues;
    for (const auto &Blk : F->blocks())
      for (const auto &Inst : Blk->instructions())
        if (!Inst->type().isVoid())
          BaselineValues[Inst->profileId()] = Inst.get();

    std::unordered_map<const Value *, RtValue> NewFrame;
    for (size_t I = 0; I < OsrF->numParams(); ++I)
      NewFrame[OsrF->arg(I)] = eval(F->arg(I), Frame);

    const BasicBlock *Entry = OsrF->entry();
    size_t Lead = 0;
    for (const auto &Inst : Entry->instructions()) {
      const auto *OE = dyn_cast<OsrEntryInst>(Inst.get());
      if (!OE)
        break;
      ++Lead;
      const FrameStateSlot &Slot = OE->source();
      const Value *Src = nullptr;
      if (Slot.Kind == FrameStateSlot::Target::Argument) {
        if (Slot.BaselineId < F->numParams())
          Src = F->arg(Slot.BaselineId);
      } else {
        auto It = BaselineValues.find(Slot.BaselineId);
        if (It != BaselineValues.end())
          Src = It->second;
      }
      if (!Src) {
        trap(TrapKind::Deoptimization,
             "unresolved osr entry slot in " + OsrF->name());
        return false;
      }
      NewFrame[OE] = eval(Src, Frame);
    }

    Body.F = OsrF;
    Body.Compiled = true;
    F = OsrF;
    BB = Entry;
    Frame = std::move(NewFrame);
    ResumeIndex = Lead;
    return true;
  }

  RtValue eval(const Value *V,
               const std::unordered_map<const Value *, RtValue> &Frame) {
    if (const auto *CI = dyn_cast<ConstInt>(V))
      return RtValue::intVal(CI->value());
    if (const auto *CB = dyn_cast<ConstBool>(V))
      return RtValue::boolVal(CB->value());
    if (isa<ConstNull>(V))
      return RtValue::nullVal();
    auto It = Frame.find(V);
    assert(It != Frame.end() && "use of an unevaluated value");
    return It->second;
  }

  RtValue execInstruction(const Instruction *Inst,
                          std::unordered_map<const Value *, RtValue> &Frame,
                          const ResolvedBody &Body, size_t Depth,
                          profile::ProfileTable *Profiles) {
    switch (Inst->kind()) {
    case ValueKind::BinOp:
      return execBinOp(cast<BinOpInst>(Inst), Frame);
    case ValueKind::UnOp: {
      const auto *Un = cast<UnOpInst>(Inst);
      RtValue V = eval(Un->operand(0), Frame);
      if (Un->opcode() == UnOpInst::Opcode::Neg)
        return RtValue::intVal(
            -static_cast<int64_t>(static_cast<uint64_t>(V.asInt())));
      return RtValue::boolVal(!V.asBool());
    }
    case ValueKind::Call: {
      const auto *Call = cast<CallInst>(Inst);
      charge(Costs.CallOverhead, Body.Compiled);
      std::vector<RtValue> Args;
      Args.reserve(Call->numArgs());
      for (size_t I = 0; I < Call->numArgs(); ++I)
        Args.push_back(eval(Call->arg(I), Frame));
      return callFunction(Call->callee(), Args, Depth + 1);
    }
    case ValueKind::VirtualCall: {
      const auto *VCall = cast<VirtualCallInst>(Inst);
      charge(Costs.CallOverhead + Costs.VirtualDispatchOverhead,
             Body.Compiled);
      RtValue Recv = eval(VCall->receiver(), Frame);
      if (!Recv.isObject()) {
        trap(TrapKind::NullPointer, "receiver of " + VCall->methodName());
        return RtValue::nullVal();
      }
      int ClassId = TheHeap.object(Recv.Ref).ClassId;
      if (Profiles)
        Profiles->methodProfile(Body.ProfileName)
            .Receivers[VCall->profileId()]
            .record(ClassId);
      const types::MethodInfo *Target =
          M.classes().resolveMethod(ClassId, VCall->methodName());
      if (!Target) {
        trap(TrapKind::UnknownFunction,
             "virtual " + VCall->methodName());
        return RtValue::nullVal();
      }
      std::vector<RtValue> Args;
      Args.reserve(VCall->numArgs() + 1);
      Args.push_back(Recv);
      for (size_t I = 0; I < VCall->numArgs(); ++I)
        Args.push_back(eval(VCall->arg(I), Frame));
      return callFunction(Target->QualifiedName, Args, Depth + 1);
    }
    case ValueKind::NewObject: {
      if (TheHeap.exhausted()) {
        trap(TrapKind::HeapExhausted, Body.F->name());
        return RtValue::nullVal();
      }
      return RtValue::objectVal(
          TheHeap.allocObject(cast<NewObjectInst>(Inst)->classId()));
    }
    case ValueKind::NewArray: {
      const auto *New = cast<NewArrayInst>(Inst);
      if (TheHeap.exhausted()) {
        trap(TrapKind::HeapExhausted, Body.F->name());
        return RtValue::nullVal();
      }
      int64_t Len = eval(New->length(), Frame).asInt();
      if (Len < 0) {
        trap(TrapKind::IndexOutOfBounds, "negative array length");
        return RtValue::nullVal();
      }
      return RtValue::arrayVal(
          TheHeap.allocArray(New->type().isIntArray(), Len));
    }
    case ValueKind::LoadField: {
      const auto *Load = cast<LoadFieldInst>(Inst);
      RtValue Obj = eval(Load->object(), Frame);
      if (!Obj.isObject()) {
        trap(TrapKind::NullPointer, "field load");
        return RtValue::nullVal();
      }
      return TheHeap.object(Obj.Ref).Fields[Load->fieldSlot()];
    }
    case ValueKind::StoreField: {
      const auto *Store = cast<StoreFieldInst>(Inst);
      RtValue Obj = eval(Store->object(), Frame);
      if (!Obj.isObject()) {
        trap(TrapKind::NullPointer, "field store");
        return RtValue::nullVal();
      }
      TheHeap.object(Obj.Ref).Fields[Store->fieldSlot()] =
          eval(Store->storedValue(), Frame);
      return RtValue::nullVal();
    }
    case ValueKind::LoadIndex: {
      const auto *Load = cast<LoadIndexInst>(Inst);
      RtValue Arr = eval(Load->array(), Frame);
      RtValue Idx = eval(Load->index(), Frame);
      if (!Arr.isArray()) {
        trap(TrapKind::NullPointer, "array load");
        return RtValue::nullVal();
      }
      RtArray &A = TheHeap.array(Arr.Ref);
      int64_t I = Idx.asInt();
      if (I < 0 || static_cast<size_t>(I) >= A.Elems.size()) {
        trap(TrapKind::IndexOutOfBounds, "array load");
        return RtValue::nullVal();
      }
      return A.Elems[static_cast<size_t>(I)];
    }
    case ValueKind::StoreIndex: {
      const auto *Store = cast<StoreIndexInst>(Inst);
      RtValue Arr = eval(Store->array(), Frame);
      RtValue Idx = eval(Store->index(), Frame);
      RtValue V = eval(Store->storedValue(), Frame);
      if (!Arr.isArray()) {
        trap(TrapKind::NullPointer, "array store");
        return RtValue::nullVal();
      }
      RtArray &A = TheHeap.array(Arr.Ref);
      int64_t I = Idx.asInt();
      if (I < 0 || static_cast<size_t>(I) >= A.Elems.size()) {
        trap(TrapKind::IndexOutOfBounds, "array store");
        return RtValue::nullVal();
      }
      A.Elems[static_cast<size_t>(I)] = V;
      return RtValue::nullVal();
    }
    case ValueKind::ArrayLength: {
      RtValue Arr = eval(cast<ArrayLengthInst>(Inst)->array(), Frame);
      if (!Arr.isArray()) {
        trap(TrapKind::NullPointer, "array length");
        return RtValue::nullVal();
      }
      return RtValue::intVal(
          static_cast<int64_t>(TheHeap.array(Arr.Ref).Elems.size()));
    }
    case ValueKind::InstanceOf: {
      const auto *IsInst = cast<InstanceOfInst>(Inst);
      RtValue Obj = eval(IsInst->object(), Frame);
      if (!Obj.isObject())
        return RtValue::boolVal(false); // null is no instance of anything.
      return RtValue::boolVal(M.classes().isSubclassOf(
          TheHeap.object(Obj.Ref).ClassId, IsInst->testClassId()));
    }
    case ValueKind::CheckCast: {
      const auto *Cast = cast<CheckCastInst>(Inst);
      RtValue Obj = eval(Cast->object(), Frame);
      if (Obj.isNull())
        return Obj; // null casts to anything, like Java.
      if (!Obj.isObject() ||
          !M.classes().isSubclassOf(TheHeap.object(Obj.Ref).ClassId,
                                    Cast->targetClassId())) {
        trap(TrapKind::ClassCastFailure, Body.F->name());
        return RtValue::nullVal();
      }
      return Obj;
    }
    case ValueKind::GetClassId: {
      RtValue Obj = eval(cast<GetClassIdInst>(Inst)->object(), Frame);
      if (!Obj.isObject()) {
        trap(TrapKind::NullPointer, "getclassid");
        return RtValue::nullVal();
      }
      return RtValue::intVal(TheHeap.object(Obj.Ref).ClassId);
    }
    case ValueKind::NullCheck: {
      RtValue Obj = eval(cast<NullCheckInst>(Inst)->object(), Frame);
      if (Obj.isNull()) {
        trap(TrapKind::NullPointer, "nullcheck");
        return RtValue::nullVal();
      }
      return Obj;
    }
    case ValueKind::Print: {
      RtValue V = eval(cast<PrintInst>(Inst)->value(), Frame);
      if (V.isBool())
        Result.Output += V.asBool() ? "true\n" : "false\n";
      else
        Result.Output += formatString(
            "%lld\n", static_cast<long long>(V.asInt()));
      return RtValue::nullVal();
    }
    default:
      incline_unreachable("unhandled instruction in interpreter");
    }
  }

  RtValue execBinOp(const BinOpInst *Bin,
                    std::unordered_map<const Value *, RtValue> &Frame) {
    RtValue L = eval(Bin->lhs(), Frame);
    RtValue R = eval(Bin->rhs(), Frame);
    using Op = BinOpInst::Opcode;
    Op Opcode = Bin->opcode();

    // Equality covers references, bools and ints uniformly.
    if (Opcode == Op::Eq)
      return RtValue::boolVal(L.equals(R));
    if (Opcode == Op::Ne)
      return RtValue::boolVal(!L.equals(R));

    if (L.isBool()) {
      std::optional<bool> Folded = foldBoolBinOp(Opcode, L.asBool(),
                                                 R.asBool());
      assert(Folded && "invalid bool binop survived sema");
      return RtValue::boolVal(*Folded);
    }

    if (Bin->isComparison())
      return RtValue::boolVal(
          foldIntComparison(Opcode, L.asInt(), R.asInt()));

    std::optional<int64_t> Folded = foldIntBinOp(Opcode, L.asInt(), R.asInt());
    if (!Folded) {
      trap(TrapKind::DivisionByZero, "binop");
      return RtValue::nullVal();
    }
    return RtValue::intVal(*Folded);
  }

  const Module &M;
  ExecutionEnv &Env;
  const CostModel &Costs;
  const ExecLimits &Limits;
  Heap &TheHeap;
  ExecResult &Result;
  /// Wall-clock watchdog state (only consulted when Limits.MaxWallSeconds
  /// is set): one clock read per run at construction, then one read every
  /// few thousand steps.
  std::chrono::steady_clock::time_point WallStart =
      std::chrono::steady_clock::now();
  uint64_t NextWallCheckAt = 0;
};

} // namespace

ExecResult Interpreter::run(std::string_view Symbol,
                            const std::vector<RtValue> &Args) {
  ExecResult Result;
  FrameExecutor Exec(M, Env, Costs, Limits, TheHeap, Result);
  Result.Return = Exec.callFunction(Symbol, Args, 0);
  return Result;
}

ExecResult incline::interp::runMain(const ir::Module &M,
                                    profile::ProfileTable *Profiles) {
  ModuleEnv Env(M, Profiles);
  Interpreter I(M, Env);
  return I.run("main");
}
