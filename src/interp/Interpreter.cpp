//===- interp/Interpreter.cpp ----------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
//
// Two execution cores share one FrameExecutor (DESIGN.md §13):
//
//  * execBodyFast (default) runs against DecodedBody tables: slot-indexed
//    vector frames, per-edge phi move lists, polymorphic inline caches at
//    virtual callsites, and interned profile handles.
//  * execBody (reference) is the original map-frame core, kept
//    runtime-selectable as the semantic baseline the differential oracle
//    compares against.
//
// Both must agree bit-for-bit on program output, traps, step and cycle
// totals, and recorded profile content — the interp-fast fuzz stage and the
// frame-transfer equivalence battery enforce exactly that.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "interp/DecodedBody.h"
#include "ir/ArithSemantics.h"
#include "support/Cancellation.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"
#include "support/StringUtils.h"

#include <chrono>
#include <unordered_map>

using namespace incline;
using namespace incline::interp;
using namespace incline::ir;

std::string_view incline::interp::trapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::None: return "none";
  case TrapKind::NullPointer: return "null pointer";
  case TrapKind::IndexOutOfBounds: return "index out of bounds";
  case TrapKind::DivisionByZero: return "division by zero";
  case TrapKind::ClassCastFailure: return "class cast failure";
  case TrapKind::Deoptimization: return "deoptimization";
  case TrapKind::StepLimitExceeded: return "step limit exceeded";
  case TrapKind::StackOverflow: return "stack overflow";
  case TrapKind::HeapExhausted: return "heap exhausted";
  case TrapKind::UnknownFunction: return "unknown function";
  }
  incline_unreachable("unknown trap kind");
}

ResolvedBody ModuleEnv::resolve(std::string_view Symbol) {
  ResolvedBody Body;
  Body.F = M.function(Symbol);
  Body.Compiled = false;
  Body.ProfileName = std::string(Symbol);
  return Body;
}

namespace {

/// Executes call frames. One FrameExecutor per Interpreter::run; recursion
/// into callees happens through C++ recursion (bounded by MaxCallDepth).
class FrameExecutor {
public:
  FrameExecutor(const Module &M, ExecutionEnv &Env, const CostModel &Costs,
                const ExecLimits &Limits, Heap &TheHeap, ExecResult &Result,
                InterpOptions Opts, DecodedCache *Bodies)
      : M(M), Env(Env), Costs(Costs), Limits(Limits), TheHeap(TheHeap),
        Result(Result), Opts(Opts), Bodies(Bodies) {}

  RtValue callFunction(std::string_view Symbol,
                       const std::vector<RtValue> &Args, size_t Depth) {
    if (trapped())
      return RtValue::nullVal();
    if (Depth > Limits.MaxCallDepth) {
      trap(TrapKind::StackOverflow, std::string(Symbol));
      return RtValue::nullVal();
    }
    Env.onInvoke(Symbol);
    ResolvedBody Body = Env.resolve(Symbol);
    if (!Body.F) {
      trap(TrapKind::UnknownFunction, std::string(Symbol));
      return RtValue::nullVal();
    }
    if (Opts.Mode == InterpMode::Fast)
      return execBodyFast(std::move(Body), Args, Depth);
    if (!Body.Compiled) {
      if (profile::ProfileTable *Profiles = Env.profiles())
        ++Profiles->methodProfile(Body.ProfileName).InvocationCount;
    }
    return execBody(std::move(Body), Args, Depth);
  }

private:
  void trap(TrapKind Kind, std::string Context) {
    if (Result.Trap != TrapKind::None)
      return; // Keep the innermost trap.
    Result.Trap = Kind;
    Result.TrapMessage = formatString("%s (%s)",
                                      std::string(trapKindName(Kind)).c_str(),
                                      Context.c_str());
  }
  bool trapped() const { return Result.Trap != TrapKind::None; }

  void charge(uint64_t Cycles, bool Compiled) {
    if (Compiled)
      Result.CompiledCycles += Cycles;
    else
      Result.InterpretedCycles += Cycles;
  }

  /// True when the step/wall budget trapped; shared by both cores so the
  /// check placement (top of every block iteration) stays identical.
  bool checkBudgets(const std::string &FName) {
    if (Result.Steps > Limits.MaxSteps) {
      trap(TrapKind::StepLimitExceeded, FName);
      return true;
    }
    if (Limits.Deadline && Result.Steps >= NextWallCheckAt) {
      NextWallCheckAt = Result.Steps + 8192;
      if (Limits.Deadline->expired()) {
        trap(TrapKind::StepLimitExceeded, "wall clock, " + FName);
        return true;
      }
    }
    return false;
  }

  //===------------------------------------------------------------------===//
  // Fast core: pre-decoded bodies, slot frames, inline caches.
  //===------------------------------------------------------------------===//

  /// Frame read with the reference core's use-before-def discipline: the
  /// Debug build asserts on the poison sentinel makeFrame planted; Release
  /// reads a defined null (RtValue zero-initializes) instead of the
  /// reference map's UB-prone end() dereference.
  RtValue &slot(std::vector<RtValue> &Frame, int32_t Ref) {
    assert(Frame[static_cast<size_t>(Ref)].K != DecodedBody::PoisonKind &&
           "use of an unevaluated value");
    return Frame[static_cast<size_t>(Ref)];
  }

  RtValue execBodyFast(ResolvedBody Body, const std::vector<RtValue> &Args,
                       size_t Depth) {
    assert(Args.size() == Body.F->numParams() && "argument count mismatch");
    profile::ProfileTable *Profiles =
        Body.Compiled ? nullptr : Env.profiles();
    DecodedBody *DB = &Bodies->bodyFor(*Body.F, Costs);

    if (Profiles) {
      // Any profiled execution runs the baseline body, whose profile key is
      // its own name — the invariant that lets interned handles live on the
      // per-Function DecodedBody.
      assert(Body.ProfileName == Body.F->name() &&
             "profiled body keyed by a foreign profile name");
      DB->ensureFresh(Profiles);
      if (!DB->MP)
        DB->MP = &Profiles->methodProfile(Body.ProfileName);
      ++DB->MP->InvocationCount;
    }

    std::vector<RtValue> Frame = DB->makeFrame(Args.size());
    for (size_t I = 0; I < Args.size(); ++I)
      Frame[I] = Args[I];

    uint32_t BlockIdx = 0;
    const BasicBlock *PrevBB = nullptr;
    // Set by deopt/OSR transfers: the next block iteration begins at this
    // decoded (non-phi) instruction index with phi evaluation skipped (the
    // materialized frame already holds every live value).
    size_t ResumeInstIdx = 0;
    bool SkipPhis = false;
    // Set by an OSR poll at a block transition: the frame transfers into
    // this OSR variant once the target block's phis have been evaluated.
    const Function *PendingOsr = nullptr;
    // Hoisted per-tier accounting; retargeted by deopt/OSR transfers.
    uint64_t *CycleSink =
        Body.Compiled ? &Result.CompiledCycles : &Result.InterpretedCycles;
    uint64_t DispatchExtra = Body.Compiled ? 0 : Costs.InterpDispatchCost;

    while (true) {
      if (trapped())
        return RtValue::nullVal();
      if (checkBudgets(Body.F->name()))
        return RtValue::nullVal();

      const DecodedBody::Block &Blk = DB->Blocks[BlockIdx];

      // Phis evaluate in parallel against the edge taken: stage every read,
      // then write (an edge's move list may permute sibling phis).
      if (!SkipPhis && Blk.NumPhis != 0) {
        assert(PrevBB && "phi in entry block");
        const DecodedBody::Edge *Ed = nullptr;
        for (uint32_t E = 0; E < Blk.NumEdges; ++E)
          if (DB->Edges[Blk.FirstEdge + E].Pred == PrevBB) {
            Ed = &DB->Edges[Blk.FirstEdge + E];
            break;
          }
        assert(Ed && "phi has no entry for the taken edge");
        if (Ed) {
          PhiScratch.resize(Ed->MovesCount);
          for (uint32_t I = 0; I < Ed->MovesCount; ++I)
            PhiScratch[I] = slot(Frame, DB->Moves[Ed->MovesBegin + I].Src);
          for (uint32_t I = 0; I < Ed->MovesCount; ++I)
            Frame[DB->Moves[Ed->MovesBegin + I].Dest] = PhiScratch[I];
        }
      }
      SkipPhis = false;
      size_t InstIdx = ResumeInstIdx;
      ResumeInstIdx = 0;

      if (PendingOsr) {
        // The loop header's phis now hold this iteration's values; hand
        // the frame to the compiled OSR body.
        const Function *Target = PendingOsr;
        PendingOsr = nullptr;
        if (!transferToOsrFast(Target, Body, DB, Frame, BlockIdx,
                               ResumeInstIdx))
          return RtValue::nullVal();
        SkipPhis = true;
        Profiles = nullptr; // The compiled tier records no profiles.
        CycleSink = &Result.CompiledCycles;
        DispatchExtra = 0;
        PrevBB = nullptr;
        continue;
      }

      for (; InstIdx < Blk.NumInsts; ++InstIdx) {
        const DecodedBody::Inst &DI = DB->Insts[Blk.FirstInst + InstIdx];
        ++Result.Steps;
        *CycleSink += DI.Cost + DispatchExtra;

        switch (DI.Kind) {
        case ValueKind::Jump: {
          PrevBB = Blk.BB;
          uint32_t Next = DI.S0;
          Env.onSafepoint();
          if (Body.OsrEligible && !Body.Compiled)
            PendingOsr = Env.onOsrEdge(Body.ProfileName, *Blk.BB,
                                       *DB->Blocks[Next].BB);
          BlockIdx = Next;
          goto BlockDone;
        }
        case ValueKind::Branch: {
          bool Cond = slot(Frame, DB->Ops[DI.FirstOp]).asBool();
          if (Profiles) {
            DB->ensureFresh(Profiles);
            profile::BranchProfile *&BP = DB->BranchCache[DI.ProfileSlot];
            if (!BP) {
              if (!DB->MP)
                DB->MP = &Profiles->methodProfile(Body.ProfileName);
              BP = &DB->MP->Branches[DI.I->profileId()];
            }
            if (Cond)
              ++BP->TrueCount;
            else
              ++BP->FalseCount;
          }
          PrevBB = Blk.BB;
          uint32_t Next = Cond ? DI.S0 : DI.S1;
          Env.onSafepoint();
          if (Body.OsrEligible && !Body.Compiled)
            PendingOsr = Env.onOsrEdge(Body.ProfileName, *Blk.BB,
                                       *DB->Blocks[Next].BB);
          BlockIdx = Next;
          goto BlockDone;
        }
        case ValueKind::Guard: {
          RtValue Recv = slot(Frame, DB->Ops[DI.FirstOp]);
          // Null receivers fail the guard too: the baseline re-dispatch
          // then reproduces the virtual call's null-pointer trap exactly.
          bool Pass =
              Recv.isObject() && TheHeap.object(Recv.Ref).ClassId == DI.A;
          if (Pass && Env.shouldForceGuardFailure(Body.ProfileName,
                                                  DI.I->profileId()))
            Pass = false;
          PrevBB = Blk.BB;
          uint32_t Next = Pass ? DI.S0 : DI.S1;
          Env.onSafepoint();
          if (Body.OsrEligible && !Body.Compiled)
            PendingOsr = Env.onOsrEdge(Body.ProfileName, *Blk.BB,
                                       *DB->Blocks[Next].BB);
          BlockIdx = Next;
          goto BlockDone;
        }
        case ValueKind::Return:
          return DI.NumOps != 0 ? slot(Frame, DB->Ops[DI.FirstOp])
                                : RtValue::nullVal();
        case ValueKind::Deopt: {
          const auto *D = cast<DeoptInst>(DI.I);
          if (!D->hasFrameState()) {
            // Legacy meaning: a point the compiled code believed
            // unreachable. Nothing to recover to — fatal trap.
            trap(TrapKind::Deoptimization, D->reason());
            return RtValue::nullVal();
          }
          if (!transferToBaselineFast(D, DI, Body, DB, Frame, BlockIdx,
                                      ResumeInstIdx))
            return RtValue::nullVal();
          // The transfer swapped in the baseline body; re-enter the loop
          // at the resume point with the materialized frame.
          SkipPhis = true;
          Profiles = Env.profiles();
          CycleSink = &Result.InterpretedCycles;
          DispatchExtra = Costs.InterpDispatchCost;
          PrevBB = nullptr;
          goto BlockDone;
        }
        case ValueKind::Call: {
          *CycleSink += Costs.CallOverhead;
          std::vector<RtValue> CArgs;
          CArgs.reserve(DI.NumOps);
          for (uint32_t I = 0; I < DI.NumOps; ++I)
            CArgs.push_back(slot(Frame, DB->Ops[DI.FirstOp + I]));
          RtValue V = callFunction(cast<CallInst>(DI.I)->callee(), CArgs,
                                   Depth + 1);
          if (trapped())
            return RtValue::nullVal();
          if (DI.Dest >= 0)
            Frame[DI.Dest] = V;
          break;
        }
        case ValueKind::VirtualCall: {
          *CycleSink += Costs.CallOverhead + Costs.VirtualDispatchOverhead;
          const auto *VC = cast<VirtualCallInst>(DI.I);
          RtValue Recv = slot(Frame, DB->Ops[DI.FirstOp]);
          if (!Recv.isObject()) {
            trap(TrapKind::NullPointer, "receiver of " + VC->methodName());
            return RtValue::nullVal();
          }
          int ClassId = TheHeap.object(Recv.Ref).ClassId;
          const types::MethodInfo *Target = nullptr;
          if (Opts.InlineCaches || Profiles)
            DB->ensureFresh(Profiles);
          if (Opts.InlineCaches) {
            DecodedBody::Pic &P = DB->Pics[DI.ProfileSlot];
            for (uint8_t E = 0; E < P.Size; ++E)
              if (P.E[E].ClassId == ClassId) {
                Target = P.E[E].Target;
                // A hit doubles as the receiver record: the interned count
                // is &ReceiverProfile::Counts[ClassId] (null when this body
                // executes unprofiled — then a hit records nothing, exactly
                // like the reference core's compiled tier).
                if (P.E[E].Count)
                  ++*P.E[E].Count;
                else
                  assert(!Profiles &&
                         "profiled PIC entry lost its interned count");
                break;
              }
          }
          if (!Target) {
            Target = M.classes().resolveMethod(ClassId, VC->methodName());
            if (!Target) {
              // Record nothing for a receiver whose dispatch traps — it
              // must not pollute the histogram speculative devirt feeds on.
              trap(TrapKind::UnknownFunction, "virtual " + VC->methodName());
              return RtValue::nullVal();
            }
            uint64_t *Count = nullptr;
            DecodedBody::Pic &P = DB->Pics[DI.ProfileSlot];
            if (Profiles) {
              if (!P.RP) {
                if (!DB->MP)
                  DB->MP = &Profiles->methodProfile(Body.ProfileName);
                P.RP = &DB->MP->Receivers[DI.I->profileId()];
              }
              P.RP->record(ClassId);
              Count = &P.RP->Counts[ClassId];
            }
            if (Opts.InlineCaches && P.Size < DecodedBody::PicWidth) {
              P.E[P.Size] = {ClassId, Target, Count};
              ++P.Size;
            }
          }
          std::vector<RtValue> CArgs;
          CArgs.reserve(DI.NumOps);
          CArgs.push_back(Recv);
          for (uint32_t I = 1; I < DI.NumOps; ++I)
            CArgs.push_back(slot(Frame, DB->Ops[DI.FirstOp + I]));
          RtValue V = callFunction(Target->QualifiedName, CArgs, Depth + 1);
          if (trapped())
            return RtValue::nullVal();
          if (DI.Dest >= 0)
            Frame[DI.Dest] = V;
          break;
        }
        case ValueKind::BinOp: {
          const RtValue &L = slot(Frame, DB->Ops[DI.FirstOp]);
          const RtValue &R = slot(Frame, DB->Ops[DI.FirstOp + 1]);
          using Op = BinOpInst::Opcode;
          Op Opcode = static_cast<Op>(DI.Sub);
          RtValue V;
          // Equality covers references, bools and ints uniformly.
          if (Opcode == Op::Eq)
            V = RtValue::boolVal(L.equals(R));
          else if (Opcode == Op::Ne)
            V = RtValue::boolVal(!L.equals(R));
          else if (L.isBool()) {
            std::optional<bool> Folded =
                foldBoolBinOp(Opcode, L.asBool(), R.asBool());
            assert(Folded && "invalid bool binop survived sema");
            V = RtValue::boolVal(*Folded);
          } else if (BinOpInst::isComparison(Opcode)) {
            V = RtValue::boolVal(
                foldIntComparison(Opcode, L.asInt(), R.asInt()));
          } else {
            std::optional<int64_t> Folded =
                foldIntBinOp(Opcode, L.asInt(), R.asInt());
            if (!Folded) {
              trap(TrapKind::DivisionByZero, "binop");
              return RtValue::nullVal();
            }
            V = RtValue::intVal(*Folded);
          }
          Frame[DI.Dest] = V;
          break;
        }
        case ValueKind::UnOp: {
          RtValue V = slot(Frame, DB->Ops[DI.FirstOp]);
          Frame[DI.Dest] =
              static_cast<UnOpInst::Opcode>(DI.Sub) == UnOpInst::Opcode::Neg
                  ? RtValue::intVal(-static_cast<int64_t>(
                        static_cast<uint64_t>(V.asInt())))
                  : RtValue::boolVal(!V.asBool());
          break;
        }
        case ValueKind::NewObject: {
          if (TheHeap.exhausted()) {
            trap(TrapKind::HeapExhausted, Body.F->name());
            return RtValue::nullVal();
          }
          Frame[DI.Dest] = RtValue::objectVal(TheHeap.allocObject(DI.A));
          break;
        }
        case ValueKind::NewArray: {
          if (TheHeap.exhausted()) {
            trap(TrapKind::HeapExhausted, Body.F->name());
            return RtValue::nullVal();
          }
          int64_t Len = slot(Frame, DB->Ops[DI.FirstOp]).asInt();
          if (Len < 0) {
            trap(TrapKind::IndexOutOfBounds, "negative array length");
            return RtValue::nullVal();
          }
          Frame[DI.Dest] = RtValue::arrayVal(TheHeap.allocArray(DI.A != 0,
                                                                Len));
          break;
        }
        case ValueKind::LoadField: {
          RtValue Obj = slot(Frame, DB->Ops[DI.FirstOp]);
          if (!Obj.isObject()) {
            trap(TrapKind::NullPointer, "field load");
            return RtValue::nullVal();
          }
          Frame[DI.Dest] = TheHeap.object(Obj.Ref).Fields[DI.A];
          break;
        }
        case ValueKind::StoreField: {
          RtValue Obj = slot(Frame, DB->Ops[DI.FirstOp]);
          if (!Obj.isObject()) {
            trap(TrapKind::NullPointer, "field store");
            return RtValue::nullVal();
          }
          TheHeap.object(Obj.Ref).Fields[DI.A] =
              slot(Frame, DB->Ops[DI.FirstOp + 1]);
          break;
        }
        case ValueKind::LoadIndex: {
          RtValue Arr = slot(Frame, DB->Ops[DI.FirstOp]);
          RtValue Idx = slot(Frame, DB->Ops[DI.FirstOp + 1]);
          if (!Arr.isArray()) {
            trap(TrapKind::NullPointer, "array load");
            return RtValue::nullVal();
          }
          RtArray &A = TheHeap.array(Arr.Ref);
          int64_t I = Idx.asInt();
          if (I < 0 || static_cast<size_t>(I) >= A.Elems.size()) {
            trap(TrapKind::IndexOutOfBounds, "array load");
            return RtValue::nullVal();
          }
          Frame[DI.Dest] = A.Elems[static_cast<size_t>(I)];
          break;
        }
        case ValueKind::StoreIndex: {
          RtValue Arr = slot(Frame, DB->Ops[DI.FirstOp]);
          RtValue Idx = slot(Frame, DB->Ops[DI.FirstOp + 1]);
          RtValue V = slot(Frame, DB->Ops[DI.FirstOp + 2]);
          if (!Arr.isArray()) {
            trap(TrapKind::NullPointer, "array store");
            return RtValue::nullVal();
          }
          RtArray &A = TheHeap.array(Arr.Ref);
          int64_t I = Idx.asInt();
          if (I < 0 || static_cast<size_t>(I) >= A.Elems.size()) {
            trap(TrapKind::IndexOutOfBounds, "array store");
            return RtValue::nullVal();
          }
          A.Elems[static_cast<size_t>(I)] = V;
          break;
        }
        case ValueKind::ArrayLength: {
          RtValue Arr = slot(Frame, DB->Ops[DI.FirstOp]);
          if (!Arr.isArray()) {
            trap(TrapKind::NullPointer, "array length");
            return RtValue::nullVal();
          }
          Frame[DI.Dest] = RtValue::intVal(
              static_cast<int64_t>(TheHeap.array(Arr.Ref).Elems.size()));
          break;
        }
        case ValueKind::InstanceOf: {
          RtValue Obj = slot(Frame, DB->Ops[DI.FirstOp]);
          Frame[DI.Dest] = RtValue::boolVal(
              Obj.isObject() &&
              M.classes().isSubclassOf(TheHeap.object(Obj.Ref).ClassId,
                                       DI.A));
          break;
        }
        case ValueKind::CheckCast: {
          RtValue Obj = slot(Frame, DB->Ops[DI.FirstOp]);
          if (!Obj.isNull()) { // null casts to anything, like Java.
            if (!Obj.isObject() ||
                !M.classes().isSubclassOf(TheHeap.object(Obj.Ref).ClassId,
                                          DI.A)) {
              trap(TrapKind::ClassCastFailure, Body.F->name());
              return RtValue::nullVal();
            }
          }
          Frame[DI.Dest] = Obj;
          break;
        }
        case ValueKind::GetClassId: {
          RtValue Obj = slot(Frame, DB->Ops[DI.FirstOp]);
          if (!Obj.isObject()) {
            trap(TrapKind::NullPointer, "getclassid");
            return RtValue::nullVal();
          }
          Frame[DI.Dest] =
              RtValue::intVal(TheHeap.object(Obj.Ref).ClassId);
          break;
        }
        case ValueKind::NullCheck: {
          RtValue Obj = slot(Frame, DB->Ops[DI.FirstOp]);
          if (Obj.isNull()) {
            trap(TrapKind::NullPointer, "nullcheck");
            return RtValue::nullVal();
          }
          Frame[DI.Dest] = Obj;
          break;
        }
        case ValueKind::Print: {
          RtValue V = slot(Frame, DB->Ops[DI.FirstOp]);
          if (V.isBool())
            Result.Output += V.asBool() ? "true\n" : "false\n";
          else
            Result.Output += formatString(
                "%lld\n", static_cast<long long>(V.asInt()));
          break;
        }
        case ValueKind::OsrEntry:
          // Only materialized by OSR transfers (which resume past the
          // leading run); never dispatched.
          incline_unreachable("OsrEntry executed outside an OSR transfer");
        default:
          incline_unreachable("unhandled instruction in interpreter");
        }
      }
      // Either a terminator redirected control (goto) or the block fell off
      // its end (unterminated — unverified IR); both re-enter the outer
      // loop, the latter re-running the block until the step budget traps,
      // matching the reference core.
    BlockDone:;
    }
  }

  /// Deoptimization against the decoded tables: same contract as
  /// transferToBaseline, but destination slots resolve through BlockById /
  /// SlotByProfileId instead of per-deopt hash-map builds.
  bool transferToBaselineFast(const DeoptInst *D,
                              const DecodedBody::Inst &DDI,
                              ResolvedBody &Body, DecodedBody *&DB,
                              std::vector<RtValue> &Frame,
                              uint32_t &BlockIdx, size_t &ResumeInstIdx) {
    const FrameState &FS = D->frameState();
    const Function *Baseline = M.function(FS.BaselineSymbol);
    if (!Baseline) {
      trap(TrapKind::Deoptimization, "no baseline " + FS.BaselineSymbol);
      return false;
    }
    DecodedBody &BDB = Bodies->bodyFor(*Baseline, Costs);
    int32_t NewBlockIdx = BDB.blockIndexOf(FS.BaselineBlockId);
    size_t Resume = SIZE_MAX;
    if (NewBlockIdx >= 0) {
      const DecodedBody::Block &RBlk = BDB.Blocks[NewBlockIdx];
      for (uint32_t I = 0; I < RBlk.NumInsts; ++I)
        if (BDB.Insts[RBlk.FirstInst + I].I->profileId() == FS.ResumePoint) {
          Resume = I;
          break;
        }
    }
    if (Resume == SIZE_MAX) {
      trap(TrapKind::Deoptimization,
           "unresolved resume point in " + FS.BaselineSymbol);
      return false;
    }

    // A frame state whose slot count disagrees with the captured operands
    // cannot be materialized soundly; trap unconditionally (a Release
    // build must not transfer a truncated frame).
    if (FS.Slots.size() != D->numOperands()) {
      trap(TrapKind::Deoptimization,
           "frame-state slot/operand mismatch in " + FS.BaselineSymbol);
      return false;
    }

    // Every baseline slot starts poisoned (in Debug): only the values the
    // frame state materializes are live on the other side.
    std::vector<RtValue> NewFrame = BDB.makeFrame(0);
    for (size_t I = 0; I < FS.Slots.size(); ++I) {
      const FrameStateSlot &Slot = FS.Slots[I];
      int32_t Dest = -1;
      if (Slot.Kind == FrameStateSlot::Target::Argument) {
        if (Slot.BaselineId < Baseline->numParams())
          Dest = static_cast<int32_t>(Slot.BaselineId);
      } else {
        Dest = BDB.slotOfProfileId(Slot.BaselineId);
      }
      if (Dest < 0) {
        trap(TrapKind::Deoptimization,
             "unresolved frame-state slot in " + FS.BaselineSymbol);
        return false;
      }
      NewFrame[Dest] = slot(Frame, DB->Ops[DDI.FirstOp + I]);
    }

    // Report before transferring: the JIT runtime invalidates the compiled
    // code here. The retired Function must stay alive (the runtime parks it
    // in a graveyard) because this C++ frame still references it — and with
    // it the decoded body keyed by its uniqueId.
    Env.onDeopt(Body.ProfileName, *D);

    Body.F = Baseline;
    Body.Compiled = false;
    Body.ProfileName = FS.BaselineSymbol;
    DB = &BDB;
    Frame = std::move(NewFrame);
    BlockIdx = static_cast<uint32_t>(NewBlockIdx);
    ResumeInstIdx = Resume;
    return true;
  }

  /// Loop-entry OSR against the decoded tables: the inverse of
  /// transferToBaselineFast. \p Body must be the baseline the variant is
  /// anchored at, its current block the loop header with this iteration's
  /// phi values already in \p Frame.
  bool transferToOsrFast(const Function *OsrF, ResolvedBody &Body,
                         DecodedBody *&DB, std::vector<RtValue> &Frame,
                         uint32_t &BlockIdx, size_t &ResumeInstIdx) {
    assert(OsrF->osrAnchor() && "OSR transfer into an unanchored function");
    assert(OsrF->numParams() == Body.F->numParams() &&
           "OSR variant signature mismatch");
    DecodedBody &ODB = Bodies->bodyFor(*OsrF, Costs);
    std::vector<RtValue> NewFrame = ODB.makeFrame(OsrF->numParams());
    // Arguments occupy slots 0..numParams-1 in both bodies.
    for (size_t I = 0; I < OsrF->numParams(); ++I)
      NewFrame[I] = Frame[I];
    for (const DecodedBody::OsrEntryDesc &OE : ODB.OsrEntries) {
      int32_t Src = -1;
      if (OE.Source.Kind == FrameStateSlot::Target::Argument) {
        if (OE.Source.BaselineId < Body.F->numParams())
          Src = static_cast<int32_t>(OE.Source.BaselineId);
      } else {
        Src = DB->slotOfProfileId(OE.Source.BaselineId);
      }
      if (Src < 0) {
        trap(TrapKind::Deoptimization,
             "unresolved osr entry slot in " + OsrF->name());
        return false;
      }
      NewFrame[OE.DestSlot] = slot(Frame, Src);
    }

    Body.F = OsrF;
    Body.Compiled = true;
    DB = &ODB;
    Frame = std::move(NewFrame);
    BlockIdx = 0;
    ResumeInstIdx = ODB.OsrLeadCount;
    return true;
  }

  //===------------------------------------------------------------------===//
  // Reference core: the original map-frame execution, runtime-selectable
  // as the differential oracle's semantic baseline.
  //===------------------------------------------------------------------===//

  RtValue execBody(ResolvedBody Body, const std::vector<RtValue> &Args,
                   size_t Depth) {
    const Function *F = Body.F;
    assert(Args.size() == F->numParams() && "argument count mismatch");
    profile::ProfileTable *Profiles =
        Body.Compiled ? nullptr : Env.profiles();

    std::unordered_map<const Value *, RtValue> Frame;
    for (size_t I = 0; I < Args.size(); ++I)
      Frame[F->arg(I)] = Args[I];

    const BasicBlock *BB = F->entry();
    const BasicBlock *PrevBB = nullptr;
    // Set by a deoptimization transfer: the next block iteration begins at
    // this instruction index (the baseline resume point) instead of at the
    // top, and phi evaluation is skipped (the materialized frame already
    // holds every live value).
    size_t ResumeIndex = 0;
    // Set by an OSR poll at a block transition: the frame transfers into
    // this OSR variant once the target block's phis have been evaluated
    // (the entry descriptors may read this iteration's phi values).
    const Function *PendingOsr = nullptr;
    while (true) {
      if (trapped())
        return RtValue::nullVal();
      if (checkBudgets(F->name()))
        return RtValue::nullVal();

      // Phis evaluate in parallel against the edge taken.
      std::vector<PhiInst *> Phis = BB->phis();
      if (ResumeIndex == 0 && !Phis.empty()) {
        assert(PrevBB && "phi in entry block");
        std::vector<RtValue> NewVals;
        NewVals.reserve(Phis.size());
        for (PhiInst *Phi : Phis) {
          Value *In = Phi->incomingValueFor(PrevBB);
          assert(In && "phi has no entry for the taken edge");
          NewVals.push_back(eval(In, Frame));
        }
        for (size_t I = 0; I < Phis.size(); ++I)
          Frame[Phis[I]] = NewVals[I];
      }
      size_t Begin = ResumeIndex > Phis.size() ? ResumeIndex : Phis.size();
      ResumeIndex = 0;

      if (PendingOsr) {
        // The loop header's phis now hold this iteration's values; hand
        // the frame to the compiled OSR body.
        const Function *Target = PendingOsr;
        PendingOsr = nullptr;
        if (!transferToOsr(Target, Body, F, BB, Frame, ResumeIndex))
          return RtValue::nullVal();
        Profiles = nullptr; // The compiled tier records no profiles.
        PrevBB = nullptr;
        continue;
      }

      for (size_t Index = Begin; Index < BB->size(); ++Index) {
        const Instruction *Inst = BB->instructions()[Index].get();
        ++Result.Steps;
        charge(Costs.opCost(*Inst), Body.Compiled);
        if (!Body.Compiled)
          charge(Costs.InterpDispatchCost, false);

        if (Inst->isTerminator()) {
          switch (Inst->kind()) {
          case ValueKind::Jump:
            PrevBB = BB;
            BB = cast<JumpInst>(Inst)->target();
            Env.onSafepoint();
            break;
          case ValueKind::Branch: {
            const auto *Br = cast<BranchInst>(Inst);
            bool Cond = eval(Br->condition(), Frame).asBool();
            if (Profiles) {
              profile::BranchProfile &BP =
                  Profiles->methodProfile(Body.ProfileName)
                      .Branches[Br->profileId()];
              if (Cond)
                ++BP.TrueCount;
              else
                ++BP.FalseCount;
            }
            PrevBB = BB;
            BB = Cond ? Br->trueSuccessor() : Br->falseSuccessor();
            Env.onSafepoint();
            break;
          }
          case ValueKind::Return: {
            const auto *Ret = cast<ReturnInst>(Inst);
            return Ret->hasValue() ? eval(Ret->returnValue(), Frame)
                                   : RtValue::nullVal();
          }
          case ValueKind::Guard: {
            const auto *G = cast<GuardInst>(Inst);
            RtValue Recv = eval(G->receiver(), Frame);
            // Null receivers fail the guard too: the baseline re-dispatch
            // then reproduces the virtual call's null-pointer trap exactly.
            bool Pass = Recv.isObject() &&
                        TheHeap.object(Recv.Ref).ClassId ==
                            G->expectedClassId();
            if (Pass && Env.shouldForceGuardFailure(Body.ProfileName,
                                                    G->profileId()))
              Pass = false;
            PrevBB = BB;
            BB = Pass ? G->passSuccessor() : G->failSuccessor();
            Env.onSafepoint();
            break;
          }
          case ValueKind::Deopt: {
            const auto *D = cast<DeoptInst>(Inst);
            if (!D->hasFrameState()) {
              // Legacy meaning: a point the compiled code believed
              // unreachable. Nothing to recover to — fatal trap.
              trap(TrapKind::Deoptimization, D->reason());
              return RtValue::nullVal();
            }
            if (!transferToBaseline(D, Body, F, BB, Frame, ResumeIndex))
              return RtValue::nullVal();
            // The transfer swapped in the baseline body; re-enter the loop
            // at the resume point with the materialized frame.
            Profiles = Env.profiles();
            PrevBB = nullptr;
            break;
          }
          default:
            incline_unreachable("unknown terminator");
          }
          // OSR-eligible interpreted bodies report every taken edge: the
          // env counts backedges there and may offer an OSR body anchored
          // at the new block. Deopt transfers clear PrevBB (no CFG edge
          // was taken) and returns leave the frame, so neither polls.
          if (Body.OsrEligible && !Body.Compiled && PrevBB)
            PendingOsr = Env.onOsrEdge(Body.ProfileName, *PrevBB, *BB);
          break; // Proceed with the next block.
        }

        RtValue V = execInstruction(Inst, Frame, Body, Depth, Profiles);
        if (trapped())
          return RtValue::nullVal();
        if (!Inst->type().isVoid())
          Frame[Inst] = V;
      }
    }
  }

  /// Deoptimization: materializes \p D's frame state into a fresh baseline
  /// frame and redirects execution — \p Body, \p F, \p BB, \p Frame and
  /// \p ResumeIndex are rewritten so the caller's loop continues in the
  /// baseline at the resume virtual call. The captured operands are read
  /// out of the compiled frame *before* anything is torn down. Returns
  /// false (after trapping) when the frame state does not resolve — the
  /// verifier rejects such code at install time, so this is defense in
  /// depth, not a supported path.
  bool transferToBaseline(const DeoptInst *D, ResolvedBody &Body,
                          const Function *&F, const BasicBlock *&BB,
                          std::unordered_map<const Value *, RtValue> &Frame,
                          size_t &ResumeIndex) {
    const FrameState &FS = D->frameState();
    const Function *Baseline = M.function(FS.BaselineSymbol);
    if (!Baseline) {
      trap(TrapKind::Deoptimization, "no baseline " + FS.BaselineSymbol);
      return false;
    }
    const BasicBlock *ResumeBB = nullptr;
    for (const auto &Blk : Baseline->blocks())
      if (Blk->id() == FS.BaselineBlockId) {
        ResumeBB = Blk.get();
        break;
      }
    const Instruction *Resume = nullptr;
    size_t Index = 0;
    if (ResumeBB)
      for (; Index < ResumeBB->size(); ++Index)
        if (ResumeBB->instructions()[Index]->profileId() == FS.ResumePoint) {
          Resume = ResumeBB->instructions()[Index].get();
          break;
        }
    if (!Resume) {
      trap(TrapKind::Deoptimization,
           "unresolved resume point in " + FS.BaselineSymbol);
      return false;
    }

    // A frame state whose slot count disagrees with the captured operands
    // cannot be materialized soundly; trap unconditionally (a Release
    // build must not transfer a truncated frame).
    if (FS.Slots.size() != D->numOperands()) {
      trap(TrapKind::Deoptimization,
           "frame-state slot/operand mismatch in " + FS.BaselineSymbol);
      return false;
    }

    // Baseline values are named by profileId (slots) — build the lookup
    // once per deoptimization; deopts are rare by construction.
    std::unordered_map<unsigned, const Value *> BaselineValues;
    for (const auto &Blk : Baseline->blocks())
      for (const auto &Inst : Blk->instructions())
        if (!Inst->type().isVoid())
          BaselineValues[Inst->profileId()] = Inst.get();

    std::unordered_map<const Value *, RtValue> NewFrame;
    for (size_t I = 0; I < FS.Slots.size(); ++I) {
      const FrameStateSlot &Slot = FS.Slots[I];
      const Value *Dest = nullptr;
      if (Slot.Kind == FrameStateSlot::Target::Argument) {
        if (Slot.BaselineId < Baseline->numParams())
          Dest = Baseline->arg(Slot.BaselineId);
      } else {
        auto It = BaselineValues.find(Slot.BaselineId);
        if (It != BaselineValues.end())
          Dest = It->second;
      }
      if (!Dest) {
        trap(TrapKind::Deoptimization,
             "unresolved frame-state slot in " + FS.BaselineSymbol);
        return false;
      }
      NewFrame[Dest] = eval(D->operand(I), Frame);
    }

    // Report before transferring: the JIT runtime invalidates the compiled
    // code here. The retired Function must stay alive (the runtime parks it
    // in a graveyard) because this C++ frame still references it.
    Env.onDeopt(Body.ProfileName, *D);

    Body.F = Baseline;
    Body.Compiled = false;
    Body.ProfileName = FS.BaselineSymbol;
    F = Baseline;
    BB = ResumeBB;
    Frame = std::move(NewFrame);
    ResumeIndex = Index;
    return true;
  }

  /// Loop-entry OSR: the inverse of transferToBaseline. Materializes the
  /// interpreted frame's live values into a fresh frame for \p OsrF — the
  /// arguments by index plus one value per leading OsrEntryInst, sourced
  /// per its slot descriptor — then redirects execution to the OSR body's
  /// entry block with \p ResumeIndex skipping the already-materialized
  /// entries. \p F must be the baseline the variant is anchored at and
  /// \p BB its loop header, with this iteration's phi values already in
  /// \p Frame. Returns false (after trapping) when a slot does not
  /// resolve — install-time verification (verifyOsrEntries) rejects such
  /// code, so this is defense in depth, not a supported path.
  bool transferToOsr(const Function *OsrF, ResolvedBody &Body,
                     const Function *&F, const BasicBlock *&BB,
                     std::unordered_map<const Value *, RtValue> &Frame,
                     size_t &ResumeIndex) {
    assert(OsrF->osrAnchor() && "OSR transfer into an unanchored function");
    assert(OsrF->numParams() == F->numParams() &&
           "OSR variant signature mismatch");
    // Baseline values are named by profileId (slots) — build the lookup
    // per transfer; OSR entries are rare (once per hot loop per tier-up).
    std::unordered_map<unsigned, const Value *> BaselineValues;
    for (const auto &Blk : F->blocks())
      for (const auto &Inst : Blk->instructions())
        if (!Inst->type().isVoid())
          BaselineValues[Inst->profileId()] = Inst.get();

    std::unordered_map<const Value *, RtValue> NewFrame;
    for (size_t I = 0; I < OsrF->numParams(); ++I)
      NewFrame[OsrF->arg(I)] = eval(F->arg(I), Frame);

    const BasicBlock *Entry = OsrF->entry();
    size_t Lead = 0;
    for (const auto &Inst : Entry->instructions()) {
      const auto *OE = dyn_cast<OsrEntryInst>(Inst.get());
      if (!OE)
        break;
      ++Lead;
      const FrameStateSlot &Slot = OE->source();
      const Value *Src = nullptr;
      if (Slot.Kind == FrameStateSlot::Target::Argument) {
        if (Slot.BaselineId < F->numParams())
          Src = F->arg(Slot.BaselineId);
      } else {
        auto It = BaselineValues.find(Slot.BaselineId);
        if (It != BaselineValues.end())
          Src = It->second;
      }
      if (!Src) {
        trap(TrapKind::Deoptimization,
             "unresolved osr entry slot in " + OsrF->name());
        return false;
      }
      NewFrame[OE] = eval(Src, Frame);
    }

    Body.F = OsrF;
    Body.Compiled = true;
    F = OsrF;
    BB = Entry;
    Frame = std::move(NewFrame);
    ResumeIndex = Lead;
    return true;
  }

  RtValue eval(const Value *V,
               const std::unordered_map<const Value *, RtValue> &Frame) {
    if (const auto *CI = dyn_cast<ConstInt>(V))
      return RtValue::intVal(CI->value());
    if (const auto *CB = dyn_cast<ConstBool>(V))
      return RtValue::boolVal(CB->value());
    if (isa<ConstNull>(V))
      return RtValue::nullVal();
    auto It = Frame.find(V);
    if (It == Frame.end()) {
      // Use-before-def that slipped past the verifier: historically an
      // assert-only check, so builds without assertions dereferenced
      // end(). Trap unconditionally instead — this repo keeps asserts on
      // in every build type (see the top-level CMakeLists), so an assert
      // here would make the recovery path untestable dead code.
      trap(TrapKind::Deoptimization, "use of unevaluated value");
      return RtValue::nullVal();
    }
    return It->second;
  }

  RtValue execInstruction(const Instruction *Inst,
                          std::unordered_map<const Value *, RtValue> &Frame,
                          const ResolvedBody &Body, size_t Depth,
                          profile::ProfileTable *Profiles) {
    switch (Inst->kind()) {
    case ValueKind::BinOp:
      return execBinOp(cast<BinOpInst>(Inst), Frame);
    case ValueKind::UnOp: {
      const auto *Un = cast<UnOpInst>(Inst);
      RtValue V = eval(Un->operand(0), Frame);
      if (Un->opcode() == UnOpInst::Opcode::Neg)
        return RtValue::intVal(
            -static_cast<int64_t>(static_cast<uint64_t>(V.asInt())));
      return RtValue::boolVal(!V.asBool());
    }
    case ValueKind::Call: {
      const auto *Call = cast<CallInst>(Inst);
      charge(Costs.CallOverhead, Body.Compiled);
      std::vector<RtValue> Args;
      Args.reserve(Call->numArgs());
      for (size_t I = 0; I < Call->numArgs(); ++I)
        Args.push_back(eval(Call->arg(I), Frame));
      return callFunction(Call->callee(), Args, Depth + 1);
    }
    case ValueKind::VirtualCall: {
      const auto *VCall = cast<VirtualCallInst>(Inst);
      charge(Costs.CallOverhead + Costs.VirtualDispatchOverhead,
             Body.Compiled);
      RtValue Recv = eval(VCall->receiver(), Frame);
      if (!Recv.isObject()) {
        trap(TrapKind::NullPointer, "receiver of " + VCall->methodName());
        return RtValue::nullVal();
      }
      int ClassId = TheHeap.object(Recv.Ref).ClassId;
      const types::MethodInfo *Target =
          M.classes().resolveMethod(ClassId, VCall->methodName());
      if (!Target) {
        trap(TrapKind::UnknownFunction,
             "virtual " + VCall->methodName());
        return RtValue::nullVal();
      }
      // Record only after successful resolution: a receiver whose dispatch
      // traps must not pollute the histogram speculative devirt feeds on.
      if (Profiles)
        Profiles->methodProfile(Body.ProfileName)
            .Receivers[VCall->profileId()]
            .record(ClassId);
      std::vector<RtValue> Args;
      Args.reserve(VCall->numArgs() + 1);
      Args.push_back(Recv);
      for (size_t I = 0; I < VCall->numArgs(); ++I)
        Args.push_back(eval(VCall->arg(I), Frame));
      return callFunction(Target->QualifiedName, Args, Depth + 1);
    }
    case ValueKind::NewObject: {
      if (TheHeap.exhausted()) {
        trap(TrapKind::HeapExhausted, Body.F->name());
        return RtValue::nullVal();
      }
      return RtValue::objectVal(
          TheHeap.allocObject(cast<NewObjectInst>(Inst)->classId()));
    }
    case ValueKind::NewArray: {
      const auto *New = cast<NewArrayInst>(Inst);
      if (TheHeap.exhausted()) {
        trap(TrapKind::HeapExhausted, Body.F->name());
        return RtValue::nullVal();
      }
      int64_t Len = eval(New->length(), Frame).asInt();
      if (Len < 0) {
        trap(TrapKind::IndexOutOfBounds, "negative array length");
        return RtValue::nullVal();
      }
      return RtValue::arrayVal(
          TheHeap.allocArray(New->type().isIntArray(), Len));
    }
    case ValueKind::LoadField: {
      const auto *Load = cast<LoadFieldInst>(Inst);
      RtValue Obj = eval(Load->object(), Frame);
      if (!Obj.isObject()) {
        trap(TrapKind::NullPointer, "field load");
        return RtValue::nullVal();
      }
      return TheHeap.object(Obj.Ref).Fields[Load->fieldSlot()];
    }
    case ValueKind::StoreField: {
      const auto *Store = cast<StoreFieldInst>(Inst);
      RtValue Obj = eval(Store->object(), Frame);
      if (!Obj.isObject()) {
        trap(TrapKind::NullPointer, "field store");
        return RtValue::nullVal();
      }
      TheHeap.object(Obj.Ref).Fields[Store->fieldSlot()] =
          eval(Store->storedValue(), Frame);
      return RtValue::nullVal();
    }
    case ValueKind::LoadIndex: {
      const auto *Load = cast<LoadIndexInst>(Inst);
      RtValue Arr = eval(Load->array(), Frame);
      RtValue Idx = eval(Load->index(), Frame);
      if (!Arr.isArray()) {
        trap(TrapKind::NullPointer, "array load");
        return RtValue::nullVal();
      }
      RtArray &A = TheHeap.array(Arr.Ref);
      int64_t I = Idx.asInt();
      if (I < 0 || static_cast<size_t>(I) >= A.Elems.size()) {
        trap(TrapKind::IndexOutOfBounds, "array load");
        return RtValue::nullVal();
      }
      return A.Elems[static_cast<size_t>(I)];
    }
    case ValueKind::StoreIndex: {
      const auto *Store = cast<StoreIndexInst>(Inst);
      RtValue Arr = eval(Store->array(), Frame);
      RtValue Idx = eval(Store->index(), Frame);
      RtValue V = eval(Store->storedValue(), Frame);
      if (!Arr.isArray()) {
        trap(TrapKind::NullPointer, "array store");
        return RtValue::nullVal();
      }
      RtArray &A = TheHeap.array(Arr.Ref);
      int64_t I = Idx.asInt();
      if (I < 0 || static_cast<size_t>(I) >= A.Elems.size()) {
        trap(TrapKind::IndexOutOfBounds, "array store");
        return RtValue::nullVal();
      }
      A.Elems[static_cast<size_t>(I)] = V;
      return RtValue::nullVal();
    }
    case ValueKind::ArrayLength: {
      RtValue Arr = eval(cast<ArrayLengthInst>(Inst)->array(), Frame);
      if (!Arr.isArray()) {
        trap(TrapKind::NullPointer, "array length");
        return RtValue::nullVal();
      }
      return RtValue::intVal(
          static_cast<int64_t>(TheHeap.array(Arr.Ref).Elems.size()));
    }
    case ValueKind::InstanceOf: {
      const auto *IsInst = cast<InstanceOfInst>(Inst);
      RtValue Obj = eval(IsInst->object(), Frame);
      if (!Obj.isObject())
        return RtValue::boolVal(false); // null is no instance of anything.
      return RtValue::boolVal(M.classes().isSubclassOf(
          TheHeap.object(Obj.Ref).ClassId, IsInst->testClassId()));
    }
    case ValueKind::CheckCast: {
      const auto *Cast = cast<CheckCastInst>(Inst);
      RtValue Obj = eval(Cast->object(), Frame);
      if (Obj.isNull())
        return Obj; // null casts to anything, like Java.
      if (!Obj.isObject() ||
          !M.classes().isSubclassOf(TheHeap.object(Obj.Ref).ClassId,
                                    Cast->targetClassId())) {
        trap(TrapKind::ClassCastFailure, Body.F->name());
        return RtValue::nullVal();
      }
      return Obj;
    }
    case ValueKind::GetClassId: {
      RtValue Obj = eval(cast<GetClassIdInst>(Inst)->object(), Frame);
      if (!Obj.isObject()) {
        trap(TrapKind::NullPointer, "getclassid");
        return RtValue::nullVal();
      }
      return RtValue::intVal(TheHeap.object(Obj.Ref).ClassId);
    }
    case ValueKind::NullCheck: {
      RtValue Obj = eval(cast<NullCheckInst>(Inst)->object(), Frame);
      if (Obj.isNull()) {
        trap(TrapKind::NullPointer, "nullcheck");
        return RtValue::nullVal();
      }
      return Obj;
    }
    case ValueKind::Print: {
      RtValue V = eval(cast<PrintInst>(Inst)->value(), Frame);
      if (V.isBool())
        Result.Output += V.asBool() ? "true\n" : "false\n";
      else
        Result.Output += formatString(
            "%lld\n", static_cast<long long>(V.asInt()));
      return RtValue::nullVal();
    }
    default:
      incline_unreachable("unhandled instruction in interpreter");
    }
  }

  RtValue execBinOp(const BinOpInst *Bin,
                    std::unordered_map<const Value *, RtValue> &Frame) {
    RtValue L = eval(Bin->lhs(), Frame);
    RtValue R = eval(Bin->rhs(), Frame);
    using Op = BinOpInst::Opcode;
    Op Opcode = Bin->opcode();

    // Equality covers references, bools and ints uniformly.
    if (Opcode == Op::Eq)
      return RtValue::boolVal(L.equals(R));
    if (Opcode == Op::Ne)
      return RtValue::boolVal(!L.equals(R));

    if (L.isBool()) {
      std::optional<bool> Folded = foldBoolBinOp(Opcode, L.asBool(),
                                                 R.asBool());
      assert(Folded && "invalid bool binop survived sema");
      return RtValue::boolVal(*Folded);
    }

    if (Bin->isComparison())
      return RtValue::boolVal(
          foldIntComparison(Opcode, L.asInt(), R.asInt()));

    std::optional<int64_t> Folded = foldIntBinOp(Opcode, L.asInt(), R.asInt());
    if (!Folded) {
      trap(TrapKind::DivisionByZero, "binop");
      return RtValue::nullVal();
    }
    return RtValue::intVal(*Folded);
  }

  const Module &M;
  ExecutionEnv &Env;
  const CostModel &Costs;
  const ExecLimits &Limits;
  Heap &TheHeap;
  ExecResult &Result;
  InterpOptions Opts;
  /// The pre-decoded body cache (null in Reference mode). Owned by the
  /// Interpreter (or shared by the JIT runtime); outlives every frame.
  DecodedCache *Bodies;
  /// Staging buffer for parallel phi moves. Safe as a member: phi moves
  /// never recurse into callees.
  std::vector<RtValue> PhiScratch;
  /// Deadline-poll pacing (only consulted when Limits.Deadline is set):
  /// the token reads its own clock, one poll every few thousand steps.
  uint64_t NextWallCheckAt = 0;
};

} // namespace

Interpreter::Interpreter(const ir::Module &M, ExecutionEnv &Env,
                         const CostModel &Costs, const ExecLimits &Limits,
                         InterpOptions Opts, DecodedCache *SharedBodies)
    : M(M), Env(Env), Costs(Costs), Limits(Limits), TheHeap(M.classes()),
      Opts(Opts), Bodies(SharedBodies) {
  if (!Bodies && Opts.Mode == InterpMode::Fast) {
    OwnedBodies = std::make_unique<DecodedCache>();
    Bodies = OwnedBodies.get();
  }
}

Interpreter::~Interpreter() = default;

ExecResult Interpreter::run(std::string_view Symbol,
                            const std::vector<RtValue> &Args) {
  ExecResult Result;
  FrameExecutor Exec(M, Env, Costs, Limits, TheHeap, Result, Opts, Bodies);
  Result.Return = Exec.callFunction(Symbol, Args, 0);
  return Result;
}

ExecResult incline::interp::runMain(const ir::Module &M,
                                    profile::ProfileTable *Profiles,
                                    InterpOptions Opts) {
  ModuleEnv Env(M, Profiles);
  Interpreter I(M, Env, CostModel(), ExecLimits(), Opts);
  return I.run("main");
}
