//===- types/Type.h - Static types of the MiniOO language ----------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact value type describing MiniOO static types: void, int, bool,
/// object references (by class id), int arrays, and object arrays. The
/// special class id `NullClassId` denotes the type of `null`, a subtype of
/// every reference type.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_TYPES_TYPE_H
#define INCLINE_TYPES_TYPE_H

#include <cstdint>
#include <string>

namespace incline::types {

/// Discriminator for Type. MiniOO has no nested arrays, so an array's
/// element type is fully described by the kind plus a class id.
enum class TypeKind : uint8_t {
  Void,
  Int,
  Bool,
  Object,      ///< Reference to an instance of class `ClassId` (or subclass).
  IntArray,    ///< int[]
  ObjectArray, ///< C[] where C is class `ClassId`.
};

/// Class id used as the element/class id of the `null` literal.
inline constexpr int NullClassId = -1;

/// A MiniOO static type; cheap to copy and compare.
class Type {
public:
  Type() : Kind(TypeKind::Void), ClassId(NullClassId) {}

  static Type voidTy() { return Type(TypeKind::Void, NullClassId); }
  static Type intTy() { return Type(TypeKind::Int, NullClassId); }
  static Type boolTy() { return Type(TypeKind::Bool, NullClassId); }
  static Type object(int ClassId) { return Type(TypeKind::Object, ClassId); }
  static Type nullTy() { return Type(TypeKind::Object, NullClassId); }
  static Type intArray() { return Type(TypeKind::IntArray, NullClassId); }
  static Type objectArray(int ElemClassId) {
    return Type(TypeKind::ObjectArray, ElemClassId);
  }

  TypeKind kind() const { return Kind; }
  /// For Object: the class id; for ObjectArray: the element class id.
  int classId() const { return ClassId; }

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInt() const { return Kind == TypeKind::Int; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isObject() const { return Kind == TypeKind::Object; }
  bool isNull() const { return isObject() && ClassId == NullClassId; }
  bool isIntArray() const { return Kind == TypeKind::IntArray; }
  bool isObjectArray() const { return Kind == TypeKind::ObjectArray; }
  bool isArray() const { return isIntArray() || isObjectArray(); }
  /// Reference types can hold `null`.
  bool isReference() const { return isObject() || isArray(); }

  bool operator==(const Type &Other) const {
    return Kind == Other.Kind && ClassId == Other.ClassId;
  }
  bool operator!=(const Type &Other) const { return !(*this == Other); }

private:
  Type(TypeKind Kind, int ClassId) : Kind(Kind), ClassId(ClassId) {}

  TypeKind Kind;
  int32_t ClassId;
};

} // namespace incline::types

#endif // INCLINE_TYPES_TYPE_H
