//===- types/ClassHierarchy.cpp -------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "types/ClassHierarchy.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace incline;
using namespace incline::types;

int ClassHierarchy::addClass(std::string_view Name, int SuperId) {
  assert(!IdByName.count(std::string(Name)) && "duplicate class name");
  assert((SuperId == NullClassId ||
          (SuperId >= 0 && SuperId < static_cast<int>(Classes.size()))) &&
         "superclass must be registered first");
  int Id = static_cast<int>(Classes.size());
  ClassInfo Info;
  Info.Name = std::string(Name);
  Info.Id = Id;
  Info.SuperId = SuperId;
  Classes.push_back(std::move(Info));
  LayoutCache.emplace_back();
  IdByName.emplace(std::string(Name), Id);
  if (SuperId != NullClassId)
    Classes[static_cast<size_t>(SuperId)].Subclasses.push_back(Id);
  return Id;
}

void ClassHierarchy::addField(int ClassId, std::string_view Name, Type Ty) {
  assert(ClassId >= 0 && ClassId < static_cast<int>(Classes.size()));
  // Reject shadowing along the chain: field slots are flat.
  for (int C = ClassId; C != NullClassId;
       C = Classes[static_cast<size_t>(C)].SuperId)
    for (const FieldInfo &F : Classes[static_cast<size_t>(C)].Fields)
      if (F.Name == Name)
        INCLINE_FATAL("field shadows an inherited field");
  FieldInfo Field;
  Field.Name = std::string(Name);
  Field.Ty = Ty;
  Classes[static_cast<size_t>(ClassId)].Fields.push_back(std::move(Field));
  invalidateLayouts(ClassId);
}

void ClassHierarchy::addMethod(int ClassId, std::string_view Name,
                               std::vector<Type> ParamTypes, Type ReturnType) {
  assert(ClassId >= 0 && ClassId < static_cast<int>(Classes.size()));
  ClassInfo &Info = Classes[static_cast<size_t>(ClassId)];
  for (const MethodInfo &M : Info.Methods)
    if (M.Name == Name)
      INCLINE_FATAL("duplicate method declaration on class");
  MethodInfo Method;
  Method.Name = std::string(Name);
  Method.QualifiedName = Info.Name + "." + std::string(Name);
  Method.DeclaringClass = ClassId;
  Method.ParamTypes = std::move(ParamTypes);
  Method.ReturnType = ReturnType;
  Info.Methods.push_back(std::move(Method));
}

const ClassInfo &ClassHierarchy::classInfo(int ClassId) const {
  assert(ClassId >= 0 && ClassId < static_cast<int>(Classes.size()) &&
         "invalid class id");
  return Classes[static_cast<size_t>(ClassId)];
}

std::optional<int> ClassHierarchy::classIdOf(std::string_view Name) const {
  auto It = IdByName.find(std::string(Name));
  if (It == IdByName.end())
    return std::nullopt;
  return It->second;
}

bool ClassHierarchy::isSubclassOf(int Sub, int Super) const {
  if (Sub == NullClassId)
    return true;
  for (int C = Sub; C != NullClassId;
       C = Classes[static_cast<size_t>(C)].SuperId)
    if (C == Super)
      return true;
  return false;
}

bool ClassHierarchy::isAssignable(Type From, Type To) const {
  if (From == To)
    return true;
  // `null` goes into any reference slot.
  if (From.isNull() && To.isReference())
    return true;
  if (From.isObject() && To.isObject())
    return isSubclassOf(From.classId(), To.classId());
  // Object arrays are covariant in MiniOO reads; we allow widening of the
  // static element type, matching Java array covariance.
  if (From.isObjectArray() && To.isObjectArray())
    return isSubclassOf(From.classId(), To.classId());
  return false;
}

const MethodInfo *ClassHierarchy::resolveMethod(int ClassId,
                                                std::string_view Name) const {
  for (int C = ClassId; C != NullClassId;
       C = Classes[static_cast<size_t>(C)].SuperId)
    for (const MethodInfo &M : Classes[static_cast<size_t>(C)].Methods)
      if (M.Name == Name)
        return &M;
  return nullptr;
}

const std::vector<FieldInfo> &ClassHierarchy::fieldLayout(int ClassId) const {
  assert(ClassId >= 0 && ClassId < static_cast<int>(Classes.size()));
  auto &Slot = LayoutCache[static_cast<size_t>(ClassId)];
  if (Slot)
    return *Slot;
  std::vector<FieldInfo> Layout;
  const ClassInfo &Info = Classes[static_cast<size_t>(ClassId)];
  if (Info.SuperId != NullClassId)
    Layout = fieldLayout(Info.SuperId);
  for (const FieldInfo &F : Info.Fields) {
    FieldInfo Placed = F;
    Placed.Index = static_cast<unsigned>(Layout.size());
    Layout.push_back(std::move(Placed));
  }
  Slot = std::move(Layout);
  return *Slot;
}

unsigned ClassHierarchy::fieldIndex(int ClassId, std::string_view Name) const {
  for (const FieldInfo &F : fieldLayout(ClassId))
    if (F.Name == Name)
      return F.Index;
  INCLINE_FATAL("unknown field name");
}

const FieldInfo &ClassHierarchy::fieldAt(int ClassId, unsigned Slot) const {
  const std::vector<FieldInfo> &Layout = fieldLayout(ClassId);
  assert(Slot < Layout.size() && "field slot out of range");
  return Layout[Slot];
}

std::vector<std::pair<int, const MethodInfo *>>
ClassHierarchy::dispatchTargets(int ClassId, std::string_view Name) const {
  std::vector<std::pair<int, const MethodInfo *>> Targets;
  for (int C : subtreeOf(ClassId))
    if (const MethodInfo *M = resolveMethod(C, Name))
      Targets.emplace_back(C, M);
  return Targets;
}

const MethodInfo *
ClassHierarchy::uniqueDispatchTarget(int ClassId,
                                     std::string_view Name) const {
  const MethodInfo *Unique = nullptr;
  for (int C : subtreeOf(ClassId)) {
    const MethodInfo *M = resolveMethod(C, Name);
    if (!M)
      return nullptr; // Some class in the subtree misses the method.
    if (Unique && Unique != M)
      return nullptr; // Overridden somewhere below: polymorphic.
    Unique = M;
  }
  return Unique;
}

std::vector<int> ClassHierarchy::subtreeOf(int ClassId) const {
  assert(ClassId >= 0 && ClassId < static_cast<int>(Classes.size()));
  std::vector<int> Result;
  std::vector<int> Work = {ClassId};
  while (!Work.empty()) {
    int C = Work.back();
    Work.pop_back();
    Result.push_back(C);
    const ClassInfo &Info = Classes[static_cast<size_t>(C)];
    Work.insert(Work.end(), Info.Subclasses.begin(), Info.Subclasses.end());
  }
  return Result;
}

void ClassHierarchy::invalidateLayouts(int ClassId) {
  for (int C : subtreeOf(ClassId))
    LayoutCache[static_cast<size_t>(C)].reset();
}
