//===- types/ClassHierarchy.h - MiniOO class table and dispatch ----------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime class hierarchy: single inheritance, virtual method
/// resolution, subtype tests, flattened field layout, and class-hierarchy-
/// analysis queries (the set of concrete dispatch targets reachable from a
/// static receiver type). This substitutes for the JVM's class metadata the
/// paper's inliner consults when devirtualizing and speculating on receiver
/// type profiles.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_TYPES_CLASSHIERARCHY_H
#define INCLINE_TYPES_CLASSHIERARCHY_H

#include "types/Type.h"

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace incline::types {

/// A declared field; `Index` is its slot in the flattened object layout.
struct FieldInfo {
  std::string Name;
  Type Ty;
  unsigned Index = 0;
};

/// A method declared (or overridden) directly on some class. The method body
/// lives in the IR module under the symbol `QualifiedName`
/// ("Class.method").
struct MethodInfo {
  std::string Name;
  std::string QualifiedName;
  int DeclaringClass = NullClassId;
  std::vector<Type> ParamTypes; ///< Excluding the implicit `this`.
  Type ReturnType;
};

/// One class: name, superclass link, declared fields and methods.
struct ClassInfo {
  std::string Name;
  int Id = NullClassId;
  int SuperId = NullClassId; ///< NullClassId for a root class.
  std::vector<FieldInfo> Fields;    ///< Declared here only.
  std::vector<MethodInfo> Methods;  ///< Declared/overridden here only.
  std::vector<int> Subclasses;      ///< Direct subclasses.
};

/// The whole-program class table. Ids are dense, assigned in addClass order.
class ClassHierarchy {
public:
  /// Registers a class; \p SuperId must already exist (or be NullClassId).
  /// Returns the new class id. Class names must be unique.
  int addClass(std::string_view Name, int SuperId = NullClassId);

  /// Declares a field on \p ClassId. Field names must be unique along the
  /// inheritance chain. Invalidates cached layouts of the subtree.
  void addField(int ClassId, std::string_view Name, Type Ty);

  /// Declares (or overrides) a method on \p ClassId.
  void addMethod(int ClassId, std::string_view Name,
                 std::vector<Type> ParamTypes, Type ReturnType);

  size_t numClasses() const { return Classes.size(); }
  const ClassInfo &classInfo(int ClassId) const;
  /// Returns the id for \p Name, or std::nullopt if unknown.
  std::optional<int> classIdOf(std::string_view Name) const;

  /// True if \p Sub is \p Super or a (transitive) subclass of it.
  /// NullClassId is a subclass of everything (type of `null`).
  bool isSubclassOf(int Sub, int Super) const;

  /// True if a value of static type \p From may be assigned to \p To.
  bool isAssignable(Type From, Type To) const;

  /// Virtual method resolution: walks from \p ClassId towards the root and
  /// returns the first matching declaration, or null.
  const MethodInfo *resolveMethod(int ClassId, std::string_view Name) const;

  /// The flattened field layout of \p ClassId (super fields first). Cached.
  const std::vector<FieldInfo> &fieldLayout(int ClassId) const;

  /// Slot of field \p Name in the layout of \p ClassId; asserts on misses.
  unsigned fieldIndex(int ClassId, std::string_view Name) const;

  /// The field at \p Slot in the layout of \p ClassId.
  const FieldInfo &fieldAt(int ClassId, unsigned Slot) const;

  /// CHA: all distinct (receiver class, resolved method) dispatch targets
  /// when the static receiver type is \p ClassId. One entry per class in the
  /// subtree; dedupe by resolved method to count distinct targets.
  std::vector<std::pair<int, const MethodInfo *>>
  dispatchTargets(int ClassId, std::string_view Name) const;

  /// If every class in the subtree of \p ClassId resolves \p Name to the
  /// same method, returns it (a devirtualization opportunity); else null.
  const MethodInfo *uniqueDispatchTarget(int ClassId,
                                         std::string_view Name) const;

  /// All ids in the subtree rooted at \p ClassId (inclusive).
  std::vector<int> subtreeOf(int ClassId) const;

private:
  void invalidateLayouts(int ClassId);

  std::vector<ClassInfo> Classes;
  std::unordered_map<std::string, int> IdByName;
  mutable std::vector<std::optional<std::vector<FieldInfo>>> LayoutCache;
};

} // namespace incline::types

#endif // INCLINE_TYPES_CLASSHIERARCHY_H
