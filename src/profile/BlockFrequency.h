//===- profile/BlockFrequency.h - Relative execution frequencies ----------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the expected number of executions of each basic block per
/// invocation of its function, from profiled (or default) branch
/// probabilities. A callsite's frequency relative to the root — the paper's
/// f(n) in Eq. 4 — is the block frequency of the callsite multiplied down
/// the call-tree path.
///
/// Implementation: the frequencies are the solution of a linear flow system
/// (entry injects 1.0, branches split by probability). We solve it
/// iteratively in reverse post order; loops converge geometrically as long
/// as their exit probability is non-zero, and the iteration/frequency caps
/// bound pathological (never-exiting) profiles.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_PROFILE_BLOCKFREQUENCY_H
#define INCLINE_PROFILE_BLOCKFREQUENCY_H

#include <string>
#include <unordered_map>

namespace incline::ir {
class BasicBlock;
class Function;
} // namespace incline::ir

namespace incline::profile {

class ProfileTable;

/// Frequency cap: a block never counts as more than this many executions
/// per invocation (guards against loops profiled as never exiting).
inline constexpr double MaxBlockFrequency = 1e6;

/// Per-block expected executions per invocation of \p F.
///
/// \p ProfileName is the method name used for profile lookups — for
/// specialized clones this is the *original* method's name (profile ids in
/// the clone still match). When \p Profiles is null every branch defaults
/// to probability 0.5.
std::unordered_map<const ir::BasicBlock *, double>
computeBlockFrequencies(const ir::Function &F, const ProfileTable *Profiles,
                        const std::string &ProfileName);

} // namespace incline::profile

#endif // INCLINE_PROFILE_BLOCKFREQUENCY_H
