//===- profile/ProfileData.h - Runtime profiles ----------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JVM-profile substitute: per-method invocation counts, per-branch
/// taken/not-taken counts, and per-callsite receiver class histograms.
/// Profiles are recorded by the interpreter during the profiling tier and
/// consumed by the inliner's frequency and polymorphic-speculation
/// machinery. Entries are keyed by (method name, instruction profileId);
/// profile ids survive cloning, so specialized call-tree copies still
/// resolve their profiles (the paper relies on the same property in Graal).
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_PROFILE_PROFILEDATA_H
#define INCLINE_PROFILE_PROFILEDATA_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace incline::profile {

/// Taken/not-taken counters of one conditional branch.
struct BranchProfile {
  uint64_t TrueCount = 0;
  uint64_t FalseCount = 0;

  uint64_t total() const { return TrueCount + FalseCount; }
  /// Probability of the true edge; 0.5 when no data was recorded.
  double trueProbability() const {
    uint64_t T = total();
    return T == 0 ? 0.5 : static_cast<double>(TrueCount) /
                              static_cast<double>(T);
  }
};

/// Histogram of observed receiver classes at a virtual callsite. Ordered map
/// keeps iteration deterministic.
struct ReceiverProfile {
  std::map<int, uint64_t> Counts;

  uint64_t total() const;
  void record(int ClassId) { ++Counts[ClassId]; }

  /// Receiver classes with observed probability >= \p MinProbability,
  /// most frequent first, at most \p MaxTargets entries. This drives the
  /// paper's polymorphic inlining (<= 3 targets, >= 10% each).
  std::vector<std::pair<int, double>>
  topReceivers(size_t MaxTargets, double MinProbability) const;
};

/// All profile state of one method.
struct MethodProfile {
  uint64_t InvocationCount = 0;
  std::unordered_map<unsigned, BranchProfile> Branches;
  std::unordered_map<unsigned, ReceiverProfile> Receivers;
  /// Taken backedge counts keyed by the loop header's baseline block id
  /// (irreducible retreating edges are credited to the enclosing natural
  /// header, see opt::OsrPlan). Drives the loop-entry OSR trigger.
  std::unordered_map<unsigned, uint64_t> Backedges;

  /// One exponential-decay tick: halves every counter and erases inner
  /// entries (branches, receiver classes, backedges) that reach zero, so a
  /// phase change re-profiles instead of speculating on ancient history.
  /// The record itself survives — callers hold references to it.
  void decay();
};

/// Program-wide profile store.
class ProfileTable {
public:
  /// Profile for \p Method, creating an empty record on first touch.
  MethodProfile &methodProfile(std::string_view Method);

  /// Read-only lookup; null if the method was never profiled.
  const MethodProfile *find(std::string_view Method) const;

  /// True-edge probability of branch \p ProfileId in \p Method (0.5
  /// default).
  double branchProbability(std::string_view Method, unsigned ProfileId) const;

  /// Receiver histogram of callsite \p ProfileId, or null.
  const ReceiverProfile *receiverProfile(std::string_view Method,
                                         unsigned ProfileId) const;

  uint64_t invocationCount(std::string_view Method) const;

  /// One exponential-decay tick over every method (see
  /// MethodProfile::decay). The runtime calls this at safepoints every
  /// `--profile-decay` halflife. MethodProfile records are kept (only
  /// their inner entries are erased), so a `MethodProfile&` survives a
  /// tick — but pointers *into* the inner maps (a BranchProfile, a
  /// ReceiverProfile, a receiver-class count, a backedge counter) may
  /// dangle afterwards. The fast interpreter and the runtime's backedge
  /// memo intern exactly such pointers, so every tick (and clear()) bumps
  /// `decayEpoch()`; interned handles are revalidated against it before
  /// each use and re-resolved on mismatch.
  void decay();

  /// Monotone counter bumped by every decay() tick and clear(). Anything
  /// caching pointers into this table (interned profile handles, inline
  /// caches doubling as receiver recorders) must flush when it moves.
  uint64_t decayEpoch() const { return DecayEpoch; }

  void clear() {
    Methods.clear();
    ++DecayEpoch;
  }

  /// Deterministic serialization of the whole table — methods by name,
  /// inner entries sorted by id — so differential tests and benches can
  /// assert bit-equal profile *content* across interpreter execution
  /// cores regardless of unordered-map iteration order.
  std::string dump() const;

private:
  std::map<std::string, MethodProfile, std::less<>> Methods;
  uint64_t DecayEpoch = 0;
};

} // namespace incline::profile

#endif // INCLINE_PROFILE_PROFILEDATA_H
