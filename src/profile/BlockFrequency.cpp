//===- profile/BlockFrequency.cpp --------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/BlockFrequency.h"

#include "ir/Dominators.h"
#include "ir/Function.h"
#include "ir/LoopInfo.h"
#include "profile/ProfileData.h"
#include "support/Casting.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

using namespace incline;
using namespace incline::profile;
using namespace incline::ir;

namespace {

/// Loop-nest-aware frequency solver. Loops are solved with the geometric
/// closed form: a header executes entryMass / (1 - backedgeMass) times,
/// where backedgeMass is the probability mass returning to the header per
/// header execution (computed by a local propagation that itself uses the
/// scales of inner loops). This is exact for reducible CFGs, unlike a
/// truncated power iteration which badly underestimates hot loops.
class FrequencySolver {
public:
  FrequencySolver(const Function &F, const ProfileTable *Profiles,
                  const std::string &ProfileName)
      : F(F), Profiles(Profiles), ProfileName(ProfileName), DT(F),
        LI(F, DT) {}

  std::unordered_map<const BasicBlock *, double> solve() {
    std::unordered_map<const BasicBlock *, double> Freq;
    const std::vector<BasicBlock *> &RPO = DT.reversePostOrder();
    if (RPO.empty())
      return Freq;
    std::unordered_set<const BasicBlock *> All(RPO.begin(), RPO.end());
    propagate(RPO, All, F.entry(), Freq);
    return Freq;
  }

private:
  double edgeProb(const BasicBlock *BB, const BasicBlock *Succ) const {
    const Instruction *Term = BB->terminator();
    if (!Term)
      return 0.0;
    if (const auto *Br = dyn_cast<BranchInst>(Term)) {
      double TrueProb =
          Profiles ? Profiles->branchProbability(ProfileName,
                                                 Br->profileId())
                   : 0.5;
      double P = 0.0;
      if (Br->trueSuccessor() == Succ)
        P += TrueProb;
      if (Br->falseSuccessor() == Succ)
        P += 1.0 - TrueProb;
      return P;
    }
    if (const auto *Jmp = dyn_cast<JumpInst>(Term))
      return Jmp->target() == Succ ? 1.0 : 0.0;
    if (const auto *G = dyn_cast<GuardInst>(Term)) {
      // Speculation bets on the guard holding: the fail edge exits through
      // a deoptimization, so for optimization purposes all mass follows
      // the pass edge. Without this the block holding the speculated
      // direct call reads as never-executed and the inliner walks away
      // from exactly the callsite the speculation was made for.
      double P = 0.0;
      if (G->passSuccessor() == Succ)
        P += 1.0;
      return P;
    }
    return 0.0;
  }

  bool isBackedge(const BasicBlock *From, const BasicBlock *To) const {
    return DT.dominates(To, From);
  }

  /// Expected executions of a loop header per unit of entry mass.
  double loopScale(Loop *L) {
    auto It = ScaleCache.find(L);
    if (It != ScaleCache.end())
      return It->second;
    // Local propagation inside the loop with header mass 1; inner loops
    // use their own (recursively computed) scales.
    std::vector<BasicBlock *> LoopRPO;
    for (BasicBlock *BB : DT.reversePostOrder())
      if (L->contains(BB))
        LoopRPO.push_back(BB);
    std::unordered_map<const BasicBlock *, double> Local;
    propagate(LoopRPO, L->Blocks, L->Header, Local);

    double BackedgeMass = 0.0;
    for (BasicBlock *Latch : L->Latches) {
      auto FIt = Local.find(Latch);
      if (FIt != Local.end())
        BackedgeMass += FIt->second * edgeProb(Latch, L->Header);
    }
    double Scale = BackedgeMass >= 1.0 - 1e-9
                       ? MaxBlockFrequency
                       : 1.0 / (1.0 - BackedgeMass);
    Scale = std::min(Scale, MaxBlockFrequency);
    ScaleCache[L] = Scale;
    return Scale;
  }

  /// Forward RPO propagation over \p Blocks (restricted to \p Region),
  /// treating \p Entry as injecting mass 1 and skipping backedges into
  /// each block; loop headers (other than \p Entry) multiply their entry
  /// mass by their loop scale.
  void propagate(const std::vector<BasicBlock *> &Blocks,
                 const std::unordered_set<BasicBlock *> &Region,
                 const BasicBlock *Entry,
                 std::unordered_map<const BasicBlock *, double> &Freq) {
    for (const BasicBlock *BB : Blocks) {
      double Mass;
      if (BB == Entry) {
        Mass = 1.0;
      } else {
        Mass = 0.0;
        for (const BasicBlock *Pred : BB->predecessors()) {
          if (!Region.count(const_cast<BasicBlock *>(Pred)))
            continue;
          if (isBackedge(Pred, BB))
            continue; // The geometric closed form covers these.
          auto It = Freq.find(Pred);
          if (It != Freq.end())
            Mass += It->second * edgeProb(Pred, BB);
        }
      }
      // A loop header amplifies its entry mass by the loop's trip scale.
      // (When BB == Entry this is exactly the recursive scale computation
      // asking about an inner loop; the region's own header must not
      // re-apply its scale.)
      Loop *L = LI.loopFor(BB);
      if (L && L->Header == BB && BB != Entry)
        Mass *= loopScale(L);
      Freq[BB] = std::min(Mass, MaxBlockFrequency);
    }
  }

  /// Region wrapper for the full function (every reachable block).
  void propagate(const std::vector<BasicBlock *> &Blocks,
                 const std::unordered_set<const BasicBlock *> &Region,
                 const BasicBlock *Entry,
                 std::unordered_map<const BasicBlock *, double> &Freq) {
    std::unordered_set<BasicBlock *> Mutable;
    for (const BasicBlock *BB : Region)
      Mutable.insert(const_cast<BasicBlock *>(BB));
    propagate(Blocks, Mutable, Entry, Freq);
  }

  const Function &F;
  const ProfileTable *Profiles;
  const std::string &ProfileName;
  DominatorTree DT;
  LoopInfo LI;
  std::unordered_map<Loop *, double> ScaleCache;
};

} // namespace

std::unordered_map<const BasicBlock *, double>
profile::computeBlockFrequencies(const Function &F,
                                 const ProfileTable *Profiles,
                                 const std::string &ProfileName) {
  FrequencySolver Solver(F, Profiles, ProfileName);
  return Solver.solve();
}
