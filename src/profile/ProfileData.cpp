//===- profile/ProfileData.cpp ----------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileData.h"

#include <algorithm>
#include <iterator>

using namespace incline;
using namespace incline::profile;

uint64_t ReceiverProfile::total() const {
  uint64_t Sum = 0;
  for (const auto &[ClassId, Count] : Counts)
    Sum += Count;
  return Sum;
}

std::vector<std::pair<int, double>>
ReceiverProfile::topReceivers(size_t MaxTargets, double MinProbability) const {
  uint64_t Total = total();
  if (Total == 0)
    return {};
  std::vector<std::pair<int, double>> All;
  for (const auto &[ClassId, Count] : Counts)
    All.emplace_back(ClassId,
                     static_cast<double>(Count) / static_cast<double>(Total));
  std::sort(All.begin(), All.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first; // Deterministic tie-break.
  });
  std::vector<std::pair<int, double>> Result;
  for (const auto &Entry : All) {
    if (Result.size() >= MaxTargets || Entry.second < MinProbability)
      break;
    Result.push_back(Entry);
  }
  return Result;
}

MethodProfile &ProfileTable::methodProfile(std::string_view Method) {
  auto It = Methods.find(Method);
  if (It == Methods.end())
    It = Methods.emplace(std::string(Method), MethodProfile{}).first;
  return It->second;
}

const MethodProfile *ProfileTable::find(std::string_view Method) const {
  auto It = Methods.find(Method);
  return It == Methods.end() ? nullptr : &It->second;
}

double ProfileTable::branchProbability(std::string_view Method,
                                       unsigned ProfileId) const {
  const MethodProfile *MP = find(Method);
  if (!MP)
    return 0.5;
  auto It = MP->Branches.find(ProfileId);
  return It == MP->Branches.end() ? 0.5 : It->second.trueProbability();
}

const ReceiverProfile *
ProfileTable::receiverProfile(std::string_view Method,
                              unsigned ProfileId) const {
  const MethodProfile *MP = find(Method);
  if (!MP)
    return nullptr;
  auto It = MP->Receivers.find(ProfileId);
  return It == MP->Receivers.end() ? nullptr : &It->second;
}

uint64_t ProfileTable::invocationCount(std::string_view Method) const {
  const MethodProfile *MP = find(Method);
  return MP ? MP->InvocationCount : 0;
}

void MethodProfile::decay() {
  InvocationCount >>= 1;
  for (auto It = Branches.begin(); It != Branches.end();) {
    It->second.TrueCount >>= 1;
    It->second.FalseCount >>= 1;
    It = It->second.total() == 0 ? Branches.erase(It) : std::next(It);
  }
  for (auto It = Receivers.begin(); It != Receivers.end();) {
    auto &Counts = It->second.Counts;
    for (auto CIt = Counts.begin(); CIt != Counts.end();) {
      CIt->second >>= 1;
      CIt = CIt->second == 0 ? Counts.erase(CIt) : std::next(CIt);
    }
    It = Counts.empty() ? Receivers.erase(It) : std::next(It);
  }
  for (auto It = Backedges.begin(); It != Backedges.end();) {
    It->second >>= 1;
    It = It->second == 0 ? Backedges.erase(It) : std::next(It);
  }
}

void ProfileTable::decay() {
  for (auto &[Name, MP] : Methods)
    MP.decay();
  // Inner-map entries may have been erased above; interned pointers into
  // them are now stale. Anyone holding one revalidates against this.
  ++DecayEpoch;
}

std::string ProfileTable::dump() const {
  // Branches/Receivers/Backedges are unordered; sort their ids so the dump
  // is a pure function of the table's *content*.
  auto SortedIds = [](const auto &Map) {
    std::vector<unsigned> Ids;
    Ids.reserve(Map.size());
    for (const auto &[Id, Unused] : Map)
      Ids.push_back(Id);
    std::sort(Ids.begin(), Ids.end());
    return Ids;
  };
  std::string Out;
  for (const auto &[Name, MP] : Methods) {
    Out += "method " + Name + " inv=" + std::to_string(MP.InvocationCount) +
           "\n";
    for (unsigned Id : SortedIds(MP.Branches)) {
      const BranchProfile &BP = MP.Branches.at(Id);
      Out += "  branch " + std::to_string(Id) +
             " true=" + std::to_string(BP.TrueCount) +
             " false=" + std::to_string(BP.FalseCount) + "\n";
    }
    for (unsigned Id : SortedIds(MP.Receivers)) {
      Out += "  recv " + std::to_string(Id);
      for (const auto &[ClassId, Count] : MP.Receivers.at(Id).Counts)
        Out += " " + std::to_string(ClassId) + ":" + std::to_string(Count);
      Out += "\n";
    }
    for (unsigned Id : SortedIds(MP.Backedges))
      Out += "  backedge " + std::to_string(Id) + "=" +
             std::to_string(MP.Backedges.at(Id)) + "\n";
  }
  return Out;
}
