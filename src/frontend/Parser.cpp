//===- frontend/Parser.cpp ---------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "support/StringUtils.h"

using namespace incline;
using namespace incline::frontend;

const Token &Parser::peek(size_t Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // EndOfFile sentinel.
  return Tokens[Index];
}

Token Parser::advance() {
  Token T = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *What) {
  if (match(Kind))
    return true;
  error(current().Loc,
        formatString("expected %s, found %s", What,
                     std::string(tokenKindName(current().Kind)).c_str()));
  return false;
}

void Parser::error(SourceLocation Loc, std::string Message) {
  Diags.push_back({Loc, std::move(Message)});
}

void Parser::synchronizeToDecl() {
  while (!check(TokenKind::EndOfFile) && !check(TokenKind::KwClass) &&
         !check(TokenKind::KwDef))
    advance();
}

void Parser::synchronizeToStmt() {
  while (!check(TokenKind::EndOfFile)) {
    if (match(TokenKind::Semicolon))
      return;
    if (check(TokenKind::RBrace) || check(TokenKind::KwIf) ||
        check(TokenKind::KwWhile) || check(TokenKind::KwReturn) ||
        check(TokenKind::KwVar) || check(TokenKind::KwPrint))
      return;
    advance();
  }
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Parser::parseProgram() {
  auto Prog = std::make_unique<Program>();
  while (!check(TokenKind::EndOfFile)) {
    if (check(TokenKind::KwClass)) {
      if (auto C = parseClass())
        Prog->Classes.push_back(std::move(C));
      else
        synchronizeToDecl();
    } else if (check(TokenKind::KwDef)) {
      if (auto F = parseFunction(/*OwnerClass=*/""))
        Prog->Functions.push_back(std::move(F));
      else
        synchronizeToDecl();
    } else {
      error(current().Loc, "expected 'class' or 'def' at top level");
      synchronizeToDecl();
      if (!check(TokenKind::KwClass) && !check(TokenKind::KwDef))
        break;
    }
  }
  return Prog;
}

std::unique_ptr<ClassDecl> Parser::parseClass() {
  SourceLocation Loc = current().Loc;
  expect(TokenKind::KwClass, "'class'");
  auto Decl = std::make_unique<ClassDecl>();
  Decl->Loc = Loc;
  if (!check(TokenKind::Identifier)) {
    error(current().Loc, "expected class name");
    return nullptr;
  }
  Decl->Name = std::string(advance().Text);
  if (match(TokenKind::KwExtends)) {
    if (!check(TokenKind::Identifier)) {
      error(current().Loc, "expected superclass name after 'extends'");
      return nullptr;
    }
    Decl->SuperName = std::string(advance().Text);
  }
  if (!expect(TokenKind::LBrace, "'{'"))
    return nullptr;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (check(TokenKind::KwVar)) {
      SourceLocation FieldLoc = advance().Loc; // 'var'
      if (!check(TokenKind::Identifier)) {
        error(current().Loc, "expected field name");
        synchronizeToStmt();
        continue;
      }
      FieldDecl Field;
      Field.Loc = FieldLoc;
      Field.Name = std::string(advance().Text);
      if (!expect(TokenKind::Colon, "':' before field type")) {
        synchronizeToStmt();
        continue;
      }
      Field.Ty = parseType();
      expect(TokenKind::Semicolon, "';' after field declaration");
      Decl->Fields.push_back(std::move(Field));
    } else if (check(TokenKind::KwDef)) {
      if (auto M = parseFunction(Decl->Name))
        Decl->Methods.push_back(std::move(M));
      else
        synchronizeToDecl();
    } else {
      error(current().Loc, "expected 'var' or 'def' in class body");
      advance();
    }
  }
  expect(TokenKind::RBrace, "'}' closing class body");
  return Decl;
}

std::unique_ptr<FunctionDecl> Parser::parseFunction(std::string OwnerClass) {
  SourceLocation Loc = current().Loc;
  expect(TokenKind::KwDef, "'def'");
  auto Decl = std::make_unique<FunctionDecl>();
  Decl->Loc = Loc;
  Decl->OwnerClass = std::move(OwnerClass);
  if (!check(TokenKind::Identifier)) {
    error(current().Loc, "expected function name");
    return nullptr;
  }
  Decl->Name = std::string(advance().Text);
  if (!expect(TokenKind::LParen, "'('"))
    return nullptr;
  if (!parseParams(Decl->Params))
    return nullptr;
  if (match(TokenKind::Colon) || match(TokenKind::Arrow))
    Decl->ReturnTy = parseType();
  else
    Decl->ReturnTy.K = TypeRef::Kind::Void;
  Decl->Body = parseBlock();
  if (!Decl->Body)
    return nullptr;
  return Decl;
}

bool Parser::parseParams(std::vector<ParamDecl> &Params) {
  if (match(TokenKind::RParen))
    return true;
  while (true) {
    if (!check(TokenKind::Identifier)) {
      error(current().Loc, "expected parameter name");
      return false;
    }
    ParamDecl P;
    P.Loc = current().Loc;
    P.Name = std::string(advance().Text);
    if (!expect(TokenKind::Colon, "':' before parameter type"))
      return false;
    P.Ty = parseType();
    Params.push_back(std::move(P));
    if (match(TokenKind::RParen))
      return true;
    if (!expect(TokenKind::Comma, "',' between parameters"))
      return false;
  }
}

TypeRef Parser::parseType() {
  TypeRef Ty;
  Ty.Loc = current().Loc;
  if (match(TokenKind::KwInt)) {
    Ty.K = TypeRef::Kind::Int;
  } else if (match(TokenKind::KwBool)) {
    Ty.K = TypeRef::Kind::Bool;
  } else if (check(TokenKind::Identifier)) {
    Ty.K = TypeRef::Kind::Named;
    Ty.Name = std::string(advance().Text);
  } else {
    error(current().Loc, "expected a type");
    Ty.K = TypeRef::Kind::Int; // Recover with a plausible type.
    return Ty;
  }
  if (match(TokenKind::LBracket)) {
    expect(TokenKind::RBracket, "']' in array type");
    if (Ty.K == TypeRef::Kind::Int) {
      Ty.K = TypeRef::Kind::IntArray;
    } else if (Ty.K == TypeRef::Kind::Named) {
      Ty.K = TypeRef::Kind::NamedArray;
    } else {
      error(Ty.Loc, "bool arrays are not supported");
      Ty.K = TypeRef::Kind::IntArray;
    }
  }
  return Ty;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  SourceLocation Loc = current().Loc;
  if (!expect(TokenKind::LBrace, "'{'"))
    return nullptr;
  std::vector<StmtPtr> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (StmtPtr S = parseStatement())
      Stmts.push_back(std::move(S));
    else
      synchronizeToStmt();
  }
  expect(TokenKind::RBrace, "'}' closing block");
  return std::make_unique<BlockStmt>(std::move(Stmts), Loc);
}

StmtPtr Parser::parseStatement() {
  switch (current().Kind) {
  case TokenKind::KwVar:
    return parseVarDecl();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwPrint:
    return parsePrint();
  case TokenKind::LBrace:
    return parseBlock();
  default:
    return parseExprOrAssign();
  }
}

StmtPtr Parser::parseVarDecl() {
  SourceLocation Loc = advance().Loc; // 'var'
  if (!check(TokenKind::Identifier)) {
    error(current().Loc, "expected variable name");
    return nullptr;
  }
  std::string Name = std::string(advance().Text);
  std::optional<TypeRef> DeclaredTy;
  if (match(TokenKind::Colon))
    DeclaredTy = parseType();
  if (!expect(TokenKind::Assign, "'=' (variables must be initialized)"))
    return nullptr;
  ExprPtr Init = parseExpr();
  if (!Init)
    return nullptr;
  expect(TokenKind::Semicolon, "';' after variable declaration");
  return std::make_unique<VarDeclStmt>(std::move(Name), std::move(DeclaredTy),
                                       std::move(Init), Loc);
}

StmtPtr Parser::parseIf() {
  SourceLocation Loc = advance().Loc; // 'if'
  if (!expect(TokenKind::LParen, "'(' after 'if'"))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "')' after condition"))
    return nullptr;
  StmtPtr Then = parseBlock();
  if (!Then)
    return nullptr;
  StmtPtr Else;
  if (match(TokenKind::KwElse)) {
    if (check(TokenKind::KwIf))
      Else = parseIf();
    else
      Else = parseBlock();
    if (!Else)
      return nullptr;
  }
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLocation Loc = advance().Loc; // 'while'
  if (!expect(TokenKind::LParen, "'(' after 'while'"))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "')' after condition"))
    return nullptr;
  StmtPtr Body = parseBlock();
  if (!Body)
    return nullptr;
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
}

StmtPtr Parser::parseReturn() {
  SourceLocation Loc = advance().Loc; // 'return'
  ExprPtr Value;
  if (!check(TokenKind::Semicolon)) {
    Value = parseExpr();
    if (!Value)
      return nullptr;
  }
  expect(TokenKind::Semicolon, "';' after return");
  return std::make_unique<ReturnStmt>(std::move(Value), Loc);
}

StmtPtr Parser::parsePrint() {
  SourceLocation Loc = advance().Loc; // 'print'
  if (!expect(TokenKind::LParen, "'(' after 'print'"))
    return nullptr;
  ExprPtr Value = parseExpr();
  if (!Value)
    return nullptr;
  expect(TokenKind::RParen, "')' after print argument");
  expect(TokenKind::Semicolon, "';' after print");
  return std::make_unique<PrintStmt>(std::move(Value), Loc);
}

StmtPtr Parser::parseExprOrAssign() {
  SourceLocation Loc = current().Loc;
  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;
  if (match(TokenKind::Assign)) {
    ExprPtr Value = parseExpr();
    if (!Value)
      return nullptr;
    expect(TokenKind::Semicolon, "';' after assignment");
    // The parsed LHS determines the assignment form.
    if (auto *Var = dyn_cast<VarRefExpr>(E.get()))
      return std::make_unique<AssignLocalStmt>(Var->name(), std::move(Value),
                                               Loc);
    if (isa<FieldAccessExpr>(E.get())) {
      auto *FA = static_cast<FieldAccessExpr *>(E.release());
      std::unique_ptr<FieldAccessExpr> Owned(FA);
      // Re-own the object expression out of the field access node.
      // FieldAccessExpr does not expose a release; rebuild via a helper.
      return std::make_unique<AssignFieldStmt>(
          std::unique_ptr<Expr>(Owned->takeObject()), Owned->field(),
          std::move(Value), Loc);
    }
    if (isa<IndexExpr>(E.get())) {
      auto *IE = static_cast<IndexExpr *>(E.release());
      std::unique_ptr<IndexExpr> Owned(IE);
      return std::make_unique<AssignIndexStmt>(
          std::unique_ptr<Expr>(Owned->takeArray()),
          std::unique_ptr<Expr>(Owned->takeIndex()), std::move(Value), Loc);
    }
    error(Loc, "invalid assignment target");
    return nullptr;
  }
  expect(TokenKind::Semicolon, "';' after expression statement");
  if (!isa<CallExpr>(E.get()) && !isa<MethodCallExpr>(E.get()))
    error(Loc, "only call expressions may be used as statements");
  return std::make_unique<ExprStmt>(std::move(E), Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseOr(); }

ExprPtr Parser::parseOr() {
  ExprPtr Lhs = parseAnd();
  while (Lhs && check(TokenKind::PipePipe)) {
    SourceLocation Loc = advance().Loc;
    ExprPtr Rhs = parseAnd();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(BinaryExpr::Op::Or, std::move(Lhs),
                                       std::move(Rhs), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseAnd() {
  ExprPtr Lhs = parseEquality();
  while (Lhs && check(TokenKind::AmpAmp)) {
    SourceLocation Loc = advance().Loc;
    ExprPtr Rhs = parseEquality();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(BinaryExpr::Op::And, std::move(Lhs),
                                       std::move(Rhs), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseEquality() {
  ExprPtr Lhs = parseRelational();
  while (Lhs && (check(TokenKind::EqEq) || check(TokenKind::BangEq))) {
    BinaryExpr::Op Op = check(TokenKind::EqEq) ? BinaryExpr::Op::Eq
                                               : BinaryExpr::Op::Ne;
    SourceLocation Loc = advance().Loc;
    ExprPtr Rhs = parseRelational();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseRelational() {
  ExprPtr Lhs = parseAdditive();
  while (Lhs) {
    if (check(TokenKind::KwIs) || check(TokenKind::KwAs)) {
      bool IsTest = check(TokenKind::KwIs);
      SourceLocation Loc = advance().Loc;
      if (!check(TokenKind::Identifier)) {
        error(current().Loc, "expected class name after 'is'/'as'");
        return nullptr;
      }
      std::string ClassName = std::string(advance().Text);
      if (IsTest)
        Lhs = std::make_unique<IsExpr>(std::move(Lhs), std::move(ClassName),
                                       Loc);
      else
        Lhs = std::make_unique<AsExpr>(std::move(Lhs), std::move(ClassName),
                                       Loc);
      continue;
    }
    BinaryExpr::Op Op;
    if (check(TokenKind::Less))
      Op = BinaryExpr::Op::Lt;
    else if (check(TokenKind::LessEq))
      Op = BinaryExpr::Op::Le;
    else if (check(TokenKind::Greater))
      Op = BinaryExpr::Op::Gt;
    else if (check(TokenKind::GreaterEq))
      Op = BinaryExpr::Op::Ge;
    else
      break;
    SourceLocation Loc = advance().Loc;
    ExprPtr Rhs = parseAdditive();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseAdditive() {
  ExprPtr Lhs = parseMultiplicative();
  while (Lhs && (check(TokenKind::Plus) || check(TokenKind::Minus))) {
    BinaryExpr::Op Op = check(TokenKind::Plus) ? BinaryExpr::Op::Add
                                               : BinaryExpr::Op::Sub;
    SourceLocation Loc = advance().Loc;
    ExprPtr Rhs = parseMultiplicative();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr Lhs = parseUnary();
  while (Lhs && (check(TokenKind::Star) || check(TokenKind::Slash) ||
                 check(TokenKind::Percent))) {
    BinaryExpr::Op Op = check(TokenKind::Star)    ? BinaryExpr::Op::Mul
                        : check(TokenKind::Slash) ? BinaryExpr::Op::Div
                                                  : BinaryExpr::Op::Mod;
    SourceLocation Loc = advance().Loc;
    ExprPtr Rhs = parseUnary();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseUnary() {
  if (check(TokenKind::Minus)) {
    SourceLocation Loc = advance().Loc;
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryExpr::Op::Neg, std::move(Sub),
                                       Loc);
  }
  if (check(TokenKind::Bang)) {
    SourceLocation Loc = advance().Loc;
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryExpr::Op::Not, std::move(Sub),
                                       Loc);
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (E) {
    if (check(TokenKind::Dot)) {
      SourceLocation Loc = advance().Loc;
      if (!check(TokenKind::Identifier)) {
        error(current().Loc, "expected member name after '.'");
        return nullptr;
      }
      std::string Member = std::string(advance().Text);
      if (check(TokenKind::LParen)) {
        advance();
        std::vector<ExprPtr> Args;
        if (!parseArgs(Args))
          return nullptr;
        E = std::make_unique<MethodCallExpr>(std::move(E), std::move(Member),
                                             std::move(Args), Loc);
      } else {
        E = std::make_unique<FieldAccessExpr>(std::move(E), std::move(Member),
                                              Loc);
      }
      continue;
    }
    if (check(TokenKind::LBracket)) {
      SourceLocation Loc = advance().Loc;
      ExprPtr Index = parseExpr();
      if (!Index)
        return nullptr;
      expect(TokenKind::RBracket, "']' after index");
      E = std::make_unique<IndexExpr>(std::move(E), std::move(Index), Loc);
      continue;
    }
    break;
  }
  return E;
}

ExprPtr Parser::parsePrimary() {
  SourceLocation Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::IntLiteral: {
    Token T = advance();
    return std::make_unique<IntLitExpr>(T.IntValue, Loc);
  }
  case TokenKind::KwTrue:
    advance();
    return std::make_unique<BoolLitExpr>(true, Loc);
  case TokenKind::KwFalse:
    advance();
    return std::make_unique<BoolLitExpr>(false, Loc);
  case TokenKind::KwNull:
    advance();
    return std::make_unique<NullLitExpr>(Loc);
  case TokenKind::KwThis:
    advance();
    return std::make_unique<ThisExpr>(Loc);
  case TokenKind::LParen: {
    advance();
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    expect(TokenKind::RParen, "')'");
    return E;
  }
  case TokenKind::KwNew: {
    advance();
    if (match(TokenKind::KwInt)) {
      if (!expect(TokenKind::LBracket, "'[' in array allocation"))
        return nullptr;
      ExprPtr Len = parseExpr();
      if (!Len)
        return nullptr;
      expect(TokenKind::RBracket, "']' after array length");
      TypeRef Elem;
      Elem.K = TypeRef::Kind::Int;
      Elem.Loc = Loc;
      return std::make_unique<NewArrayExpr>(std::move(Elem), std::move(Len),
                                            Loc);
    }
    if (!check(TokenKind::Identifier)) {
      error(current().Loc, "expected class name after 'new'");
      return nullptr;
    }
    std::string ClassName = std::string(advance().Text);
    if (match(TokenKind::LBracket)) {
      ExprPtr Len = parseExpr();
      if (!Len)
        return nullptr;
      expect(TokenKind::RBracket, "']' after array length");
      TypeRef Elem;
      Elem.K = TypeRef::Kind::Named;
      Elem.Name = std::move(ClassName);
      Elem.Loc = Loc;
      return std::make_unique<NewArrayExpr>(std::move(Elem), std::move(Len),
                                            Loc);
    }
    if (!expect(TokenKind::LParen, "'(' in object allocation"))
      return nullptr;
    expect(TokenKind::RParen, "')' (constructors take no arguments)");
    return std::make_unique<NewObjectExpr>(std::move(ClassName), Loc);
  }
  case TokenKind::Identifier: {
    std::string Name = std::string(advance().Text);
    if (match(TokenKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!parseArgs(Args))
        return nullptr;
      return std::make_unique<CallExpr>(std::move(Name), std::move(Args),
                                        Loc);
    }
    return std::make_unique<VarRefExpr>(std::move(Name), Loc);
  }
  default:
    error(Loc, formatString(
                   "expected an expression, found %s",
                   std::string(tokenKindName(current().Kind)).c_str()));
    return nullptr;
  }
}

bool Parser::parseArgs(std::vector<ExprPtr> &Args) {
  if (match(TokenKind::RParen))
    return true;
  while (true) {
    ExprPtr Arg = parseExpr();
    if (!Arg)
      return false;
    Args.push_back(std::move(Arg));
    if (match(TokenKind::RParen))
      return true;
    if (!expect(TokenKind::Comma, "',' between arguments"))
      return false;
  }
}
