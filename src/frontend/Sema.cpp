//===- frontend/Sema.cpp ------------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include "support/ErrorHandling.h"
#include "support/StringUtils.h"

using namespace incline;
using namespace incline::frontend;
using types::Type;

void Sema::error(SourceLocation Loc, std::string Message) {
  Diags.push_back({Loc, std::move(Message)});
}

bool Sema::run() {
  if (!registerClasses())
    return false;
  if (!registerMembers())
    return false;
  if (!registerFreeFunctions())
    return false;
  for (auto &C : Prog.Classes)
    for (auto &M : C->Methods)
      checkFunction(*M);
  for (auto &F : Prog.Functions)
    checkFunction(*F);
  return Diags.empty();
}

//===----------------------------------------------------------------------===//
// Declaration registration
//===----------------------------------------------------------------------===//

bool Sema::registerClasses() {
  // Supers must be registered before subclasses: process as a worklist.
  std::vector<ClassDecl *> Pending;
  for (auto &C : Prog.Classes)
    Pending.push_back(C.get());

  bool Progress = true;
  while (!Pending.empty() && Progress) {
    Progress = false;
    std::vector<ClassDecl *> Next;
    for (ClassDecl *C : Pending) {
      if (Classes.classIdOf(C->Name)) {
        error(C->Loc, "duplicate class '" + C->Name + "'");
        continue;
      }
      if (C->SuperName.empty()) {
        Classes.addClass(C->Name);
        Progress = true;
        continue;
      }
      std::optional<int> SuperId = Classes.classIdOf(C->SuperName);
      if (!SuperId) {
        Next.push_back(C); // Forward reference — retry next round.
        continue;
      }
      Classes.addClass(C->Name, *SuperId);
      Progress = true;
    }
    Pending = std::move(Next);
  }
  for (ClassDecl *C : Pending)
    error(C->Loc, "unknown or cyclic superclass '" + C->SuperName +
                      "' of class '" + C->Name + "'");
  return Diags.empty();
}

Type Sema::resolveTypeRef(const TypeRef &Ty) {
  switch (Ty.K) {
  case TypeRef::Kind::Void:
    return Type::voidTy();
  case TypeRef::Kind::Int:
    return Type::intTy();
  case TypeRef::Kind::Bool:
    return Type::boolTy();
  case TypeRef::Kind::IntArray:
    return Type::intArray();
  case TypeRef::Kind::Named: {
    std::optional<int> Id = Classes.classIdOf(Ty.Name);
    if (!Id) {
      error(Ty.Loc, "unknown type '" + Ty.Name + "'");
      return Type::intTy();
    }
    return Type::object(*Id);
  }
  case TypeRef::Kind::NamedArray: {
    std::optional<int> Id = Classes.classIdOf(Ty.Name);
    if (!Id) {
      error(Ty.Loc, "unknown type '" + Ty.Name + "'");
      return Type::intArray();
    }
    return Type::objectArray(*Id);
  }
  }
  incline_unreachable("unknown TypeRef kind");
}

bool Sema::registerMembers() {
  for (auto &C : Prog.Classes) {
    std::optional<int> Id = Classes.classIdOf(C->Name);
    if (!Id)
      continue; // Already diagnosed.
    for (const FieldDecl &F : C->Fields) {
      Type FieldTy = resolveTypeRef(F.Ty);
      // Shadowing check mirrors ClassHierarchy's, but with a diagnostic
      // instead of a fatal error.
      bool Shadows = false;
      const types::ClassInfo *Info = &Classes.classInfo(*Id);
      for (int Cur = Info->SuperId; Cur != types::NullClassId;
           Cur = Classes.classInfo(Cur).SuperId)
        for (const types::FieldInfo &Existing : Classes.classInfo(Cur).Fields)
          if (Existing.Name == F.Name)
            Shadows = true;
      for (const types::FieldInfo &Existing : Info->Fields)
        if (Existing.Name == F.Name)
          Shadows = true;
      if (Shadows) {
        error(F.Loc, "field '" + F.Name + "' duplicates an existing field");
        continue;
      }
      Classes.addField(*Id, F.Name, FieldTy);
    }
    for (auto &M : C->Methods) {
      std::vector<Type> ParamTypes;
      for (const ParamDecl &P : M->Params)
        ParamTypes.push_back(resolveTypeRef(P.Ty));
      Type RetTy = resolveTypeRef(M->ReturnTy);
      // Override compatibility: identical parameter and return types.
      if (const types::MethodInfo *Inherited =
              Classes.classInfo(*Id).SuperId != types::NullClassId
                  ? Classes.resolveMethod(Classes.classInfo(*Id).SuperId,
                                          M->Name)
                  : nullptr) {
        if (Inherited->ParamTypes != ParamTypes ||
            Inherited->ReturnType != RetTy)
          error(M->Loc, "override of '" + M->Name +
                            "' changes the method signature");
      }
      bool Duplicate = false;
      for (const types::MethodInfo &Existing : Classes.classInfo(*Id).Methods)
        if (Existing.Name == M->Name)
          Duplicate = true;
      if (Duplicate) {
        error(M->Loc, "duplicate method '" + M->Name + "'");
        continue;
      }
      Classes.addMethod(*Id, M->Name, ParamTypes, RetTy);
      M->Symbol = C->Name + "." + M->Name;
    }
  }
  return Diags.empty();
}

bool Sema::registerFreeFunctions() {
  for (auto &F : Prog.Functions) {
    if (FreeFuncs.count(F->Name)) {
      error(F->Loc, "duplicate function '" + F->Name + "'");
      continue;
    }
    FreeFunctionSig Sig;
    for (const ParamDecl &P : F->Params)
      Sig.ParamTypes.push_back(resolveTypeRef(P.Ty));
    Sig.ReturnType = resolveTypeRef(F->ReturnTy);
    Sig.Decl = F.get();
    F->Symbol = F->Name;
    FreeFuncs.emplace(F->Name, std::move(Sig));
  }
  return Diags.empty();
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

int Sema::declareLocal(const std::string &Name, Type Ty, SourceLocation Loc) {
  for (const Scope &S : Scopes) {
    if (S.Names.count(Name)) {
      error(Loc, "redeclaration of '" + Name + "'");
      return -1;
    }
  }
  int Id = static_cast<int>(LocalTypes.size());
  LocalTypes.push_back(Ty);
  Scopes.back().Names.emplace(Name, Id);
  return Id;
}

int Sema::lookupLocal(const std::string &Name, SourceLocation Loc) {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Names.find(Name);
    if (Found != It->Names.end())
      return Found->second;
  }
  error(Loc, "use of undeclared variable '" + Name + "'");
  return -1;
}

//===----------------------------------------------------------------------===//
// Body checking
//===----------------------------------------------------------------------===//

void Sema::checkFunction(FunctionDecl &F) {
  CurFunc = &F;
  LocalTypes.clear();
  Scopes.clear();
  pushScope();

  if (F.isMethod()) {
    std::optional<int> OwnerId = Classes.classIdOf(F.OwnerClass);
    assert(OwnerId && "method owner class must be registered");
    // `this` occupies local id 0 but is referenced via ThisExpr, not by
    // name; register it under an unutterable name.
    int ThisId = declareLocal("$this", Type::object(*OwnerId), F.Loc);
    (void)ThisId;
    assert(ThisId == 0 && "receiver must be local 0");
  }
  for (ParamDecl &P : F.Params) {
    Type Ty = resolveTypeRef(P.Ty);
    P.LocalId = declareLocal(P.Name, Ty, P.Loc);
  }

  if (F.Body)
    checkStmt(F.Body.get());

  F.NumLocals = static_cast<int>(LocalTypes.size());
  F.LocalTypes = LocalTypes;
  popScope();
  CurFunc = nullptr;
}

void Sema::requireAssignable(Type From, Type To, SourceLocation Loc,
                             const char *Context) {
  if (!Classes.isAssignable(From, To))
    error(Loc, formatString("type mismatch in %s", Context));
}

void Sema::checkStmt(Stmt *S) {
  switch (S->kind()) {
  case StmtKind::Block: {
    auto *Block = cast<BlockStmt>(S);
    pushScope();
    for (const StmtPtr &Child : Block->statements())
      checkStmt(Child.get());
    popScope();
    return;
  }
  case StmtKind::VarDecl: {
    auto *Decl = cast<VarDeclStmt>(S);
    Type InitTy = checkExpr(Decl->init());
    Type VarTy = InitTy;
    if (Decl->declaredType()) {
      VarTy = resolveTypeRef(*Decl->declaredType());
      requireAssignable(InitTy, VarTy, S->loc(), "variable initialization");
    } else if (InitTy.isNull()) {
      error(S->loc(), "cannot infer the type of '" + Decl->name() +
                          "' from a null initializer");
      VarTy = Type::intTy();
    } else if (InitTy.isVoid()) {
      error(S->loc(), "cannot initialize a variable from a void expression");
      VarTy = Type::intTy();
    }
    Decl->setVarType(VarTy);
    Decl->setLocalId(declareLocal(Decl->name(), VarTy, S->loc()));
    return;
  }
  case StmtKind::AssignLocal: {
    auto *Assign = cast<AssignLocalStmt>(S);
    int Id = lookupLocal(Assign->name(), S->loc());
    Assign->setLocalId(Id);
    Type ValueTy = checkExpr(Assign->value());
    if (Id >= 0)
      requireAssignable(ValueTy, LocalTypes[static_cast<size_t>(Id)],
                        S->loc(), "assignment");
    return;
  }
  case StmtKind::AssignField: {
    auto *Assign = cast<AssignFieldStmt>(S);
    Type ObjTy = checkExpr(Assign->object());
    Type ValueTy = checkExpr(Assign->value());
    if (!ObjTy.isObject() || ObjTy.isNull()) {
      error(S->loc(), "field assignment requires an object receiver");
      return;
    }
    const auto &Layout = Classes.fieldLayout(ObjTy.classId());
    for (const types::FieldInfo &F : Layout) {
      if (F.Name != Assign->field())
        continue;
      Assign->setFieldSlot(F.Index);
      requireAssignable(ValueTy, F.Ty, S->loc(), "field assignment");
      return;
    }
    error(S->loc(), "unknown field '" + Assign->field() + "'");
    return;
  }
  case StmtKind::AssignIndex: {
    auto *Assign = cast<AssignIndexStmt>(S);
    Type ArrTy = checkExpr(Assign->array());
    Type IdxTy = checkExpr(Assign->index());
    Type ValueTy = checkExpr(Assign->value());
    if (!IdxTy.isInt())
      error(S->loc(), "array index must be an int");
    if (ArrTy.isIntArray())
      requireAssignable(ValueTy, Type::intTy(), S->loc(), "array store");
    else if (ArrTy.isObjectArray())
      requireAssignable(ValueTy, Type::object(ArrTy.classId()), S->loc(),
                        "array store");
    else
      error(S->loc(), "indexed assignment requires an array");
    return;
  }
  case StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    Type CondTy = checkExpr(If->condition());
    if (!CondTy.isBool())
      error(S->loc(), "if condition must be a bool");
    checkStmt(If->thenStmt());
    if (If->elseStmt())
      checkStmt(If->elseStmt());
    return;
  }
  case StmtKind::While: {
    auto *While = cast<WhileStmt>(S);
    Type CondTy = checkExpr(While->condition());
    if (!CondTy.isBool())
      error(S->loc(), "while condition must be a bool");
    checkStmt(While->body());
    return;
  }
  case StmtKind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    Type RetTy = resolveTypeRef(CurFunc->ReturnTy);
    if (Ret->value()) {
      Type ValueTy = checkExpr(Ret->value());
      if (RetTy.isVoid())
        error(S->loc(), "returning a value from a void function");
      else
        requireAssignable(ValueTy, RetTy, S->loc(), "return");
    } else if (!RetTy.isVoid()) {
      error(S->loc(), "missing return value");
    }
    return;
  }
  case StmtKind::Print: {
    auto *Print = cast<PrintStmt>(S);
    Type Ty = checkExpr(Print->value());
    if (!Ty.isInt() && !Ty.isBool())
      error(S->loc(), "print takes an int or bool");
    return;
  }
  case StmtKind::ExprStmt:
    checkExpr(cast<ExprStmt>(S)->expr());
    return;
  }
  incline_unreachable("unknown statement kind");
}

Type Sema::checkExpr(Expr *E) {
  Type Ty = Type::voidTy();
  switch (E->kind()) {
  case ExprKind::IntLit:
    Ty = Type::intTy();
    break;
  case ExprKind::BoolLit:
    Ty = Type::boolTy();
    break;
  case ExprKind::NullLit:
    Ty = Type::nullTy();
    break;
  case ExprKind::This: {
    if (!CurFunc->isMethod()) {
      error(E->loc(), "'this' outside a method");
      Ty = Type::intTy();
      break;
    }
    Ty = LocalTypes[0];
    break;
  }
  case ExprKind::VarRef: {
    auto *Var = cast<VarRefExpr>(E);
    int Id = lookupLocal(Var->name(), E->loc());
    Var->setLocalId(Id);
    Ty = Id >= 0 ? LocalTypes[static_cast<size_t>(Id)] : Type::intTy();
    break;
  }
  case ExprKind::Binary:
    Ty = checkBinary(cast<BinaryExpr>(E));
    break;
  case ExprKind::Unary: {
    auto *Un = cast<UnaryExpr>(E);
    Type SubTy = checkExpr(Un->sub());
    if (Un->op() == UnaryExpr::Op::Neg) {
      if (!SubTy.isInt())
        error(E->loc(), "unary '-' requires an int");
      Ty = Type::intTy();
    } else {
      if (!SubTy.isBool())
        error(E->loc(), "'!' requires a bool");
      Ty = Type::boolTy();
    }
    break;
  }
  case ExprKind::Call:
    Ty = checkCall(cast<CallExpr>(E));
    break;
  case ExprKind::MethodCall:
    Ty = checkMethodCall(cast<MethodCallExpr>(E));
    break;
  case ExprKind::FieldAccess:
    Ty = checkFieldAccess(cast<FieldAccessExpr>(E));
    break;
  case ExprKind::Index: {
    auto *Idx = cast<IndexExpr>(E);
    Type ArrTy = checkExpr(Idx->array());
    Type IdxTy = checkExpr(Idx->index());
    if (!IdxTy.isInt())
      error(E->loc(), "array index must be an int");
    if (ArrTy.isIntArray()) {
      Ty = Type::intTy();
    } else if (ArrTy.isObjectArray()) {
      Ty = Type::object(ArrTy.classId());
    } else {
      error(E->loc(), "indexing requires an array");
      Ty = Type::intTy();
    }
    break;
  }
  case ExprKind::NewObject: {
    auto *New = cast<NewObjectExpr>(E);
    std::optional<int> Id = Classes.classIdOf(New->className());
    if (!Id) {
      error(E->loc(), "unknown class '" + New->className() + "'");
      Ty = Type::intTy();
      break;
    }
    New->setClassId(*Id);
    Ty = Type::object(*Id);
    break;
  }
  case ExprKind::NewArray: {
    auto *New = cast<NewArrayExpr>(E);
    Type LenTy = checkExpr(New->length());
    if (!LenTy.isInt())
      error(E->loc(), "array length must be an int");
    if (New->elemType().K == TypeRef::Kind::Int) {
      Ty = Type::intArray();
    } else {
      std::optional<int> Id = Classes.classIdOf(New->elemType().Name);
      if (!Id) {
        error(E->loc(), "unknown class '" + New->elemType().Name + "'");
        Ty = Type::intArray();
        break;
      }
      Ty = Type::objectArray(*Id);
    }
    break;
  }
  case ExprKind::Is: {
    auto *Is = cast<IsExpr>(E);
    Type ObjTy = checkExpr(Is->object());
    if (!ObjTy.isObject())
      error(E->loc(), "'is' requires an object operand");
    std::optional<int> Id = Classes.classIdOf(Is->className());
    if (!Id)
      error(E->loc(), "unknown class '" + Is->className() + "'");
    else
      Is->setClassId(*Id);
    Ty = Type::boolTy();
    break;
  }
  case ExprKind::As: {
    auto *As = cast<AsExpr>(E);
    Type ObjTy = checkExpr(As->object());
    if (!ObjTy.isObject())
      error(E->loc(), "'as' requires an object operand");
    std::optional<int> Id = Classes.classIdOf(As->className());
    if (!Id) {
      error(E->loc(), "unknown class '" + As->className() + "'");
      Ty = Type::intTy();
      break;
    }
    As->setClassId(*Id);
    Ty = Type::object(*Id);
    break;
  }
  }
  E->setType(Ty);
  return Ty;
}

Type Sema::checkBinary(BinaryExpr *E) {
  Type L = checkExpr(E->lhs());
  Type R = checkExpr(E->rhs());
  using Op = BinaryExpr::Op;
  switch (E->op()) {
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::Div:
  case Op::Mod:
    if (!L.isInt() || !R.isInt())
      error(E->loc(), "arithmetic requires int operands");
    return Type::intTy();
  case Op::And:
  case Op::Or:
    if (!L.isBool() || !R.isBool())
      error(E->loc(), "'&&'/'||' require bool operands");
    return Type::boolTy();
  case Op::Eq:
  case Op::Ne: {
    bool BothInt = L.isInt() && R.isInt();
    bool BothBool = L.isBool() && R.isBool();
    bool BothRef = L.isReference() && R.isReference();
    if (!BothInt && !BothBool && !BothRef)
      error(E->loc(), "'=='/'!=' require matching operand kinds");
    return Type::boolTy();
  }
  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
    if (!L.isInt() || !R.isInt())
      error(E->loc(), "comparison requires int operands");
    return Type::boolTy();
  }
  incline_unreachable("unknown binary op");
}

Type Sema::checkCall(CallExpr *E) {
  auto It = FreeFuncs.find(E->callee());
  if (It == FreeFuncs.end()) {
    error(E->loc(), "call to unknown function '" + E->callee() + "'");
    for (const ExprPtr &Arg : E->args())
      checkExpr(Arg.get());
    return Type::intTy();
  }
  const FreeFunctionSig &Sig = It->second;
  if (E->args().size() != Sig.ParamTypes.size())
    error(E->loc(), formatString("'%s' expects %zu arguments, got %zu",
                                 E->callee().c_str(), Sig.ParamTypes.size(),
                                 E->args().size()));
  for (size_t I = 0; I < E->args().size(); ++I) {
    Type ArgTy = checkExpr(E->args()[I].get());
    if (I < Sig.ParamTypes.size())
      requireAssignable(ArgTy, Sig.ParamTypes[I], E->loc(), "argument");
  }
  return Sig.ReturnType;
}

Type Sema::checkMethodCall(MethodCallExpr *E) {
  Type RecvTy = checkExpr(E->receiver());
  if (!RecvTy.isObject() || RecvTy.isNull()) {
    error(E->loc(), "method call requires an object receiver");
    for (const ExprPtr &Arg : E->args())
      checkExpr(Arg.get());
    return Type::intTy();
  }
  const types::MethodInfo *M =
      Classes.resolveMethod(RecvTy.classId(), E->method());
  if (!M) {
    error(E->loc(), "class has no method '" + E->method() + "'");
    for (const ExprPtr &Arg : E->args())
      checkExpr(Arg.get());
    return Type::intTy();
  }
  E->setResolved(M);
  if (E->args().size() != M->ParamTypes.size())
    error(E->loc(), formatString("'%s' expects %zu arguments, got %zu",
                                 E->method().c_str(), M->ParamTypes.size(),
                                 E->args().size()));
  for (size_t I = 0; I < E->args().size(); ++I) {
    Type ArgTy = checkExpr(E->args()[I].get());
    if (I < M->ParamTypes.size())
      requireAssignable(ArgTy, M->ParamTypes[I], E->loc(), "argument");
  }
  return M->ReturnType;
}

Type Sema::checkFieldAccess(FieldAccessExpr *E) {
  Type ObjTy = checkExpr(E->object());
  if (ObjTy.isArray() && E->field() == "length") {
    E->setIsArrayLength(true);
    return Type::intTy();
  }
  if (!ObjTy.isObject() || ObjTy.isNull()) {
    error(E->loc(), "field access requires an object receiver");
    return Type::intTy();
  }
  for (const types::FieldInfo &F : Classes.fieldLayout(ObjTy.classId())) {
    if (F.Name != E->field())
      continue;
    E->setFieldSlot(F.Index);
    return F.Ty;
  }
  error(E->loc(), "unknown field '" + E->field() + "'");
  return Type::intTy();
}
