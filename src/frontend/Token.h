//===- frontend/Token.h - MiniOO tokens -------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the MiniOO lexer.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_FRONTEND_TOKEN_H
#define INCLINE_FRONTEND_TOKEN_H

#include "frontend/SourceLocation.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace incline::frontend {

enum class TokenKind : uint8_t {
  EndOfFile,
  Error,
  Identifier,
  IntLiteral,
  // Keywords.
  KwClass, KwExtends, KwVar, KwDef, KwIf, KwElse, KwWhile, KwReturn,
  KwPrint, KwNew, KwTrue, KwFalse, KwNull, KwThis, KwInt, KwBool,
  KwIs, KwAs,
  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semicolon, Colon, Comma, Dot, Arrow,
  // Operators.
  Plus, Minus, Star, Slash, Percent,
  Bang, AmpAmp, PipePipe,
  EqEq, BangEq, Less, LessEq, Greater, GreaterEq,
  Assign,
};

/// Human-readable token kind (for diagnostics).
std::string_view tokenKindName(TokenKind Kind);

/// One lexed token. `Text` views into the original source buffer;
/// `IntValue` is set for IntLiteral.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string_view Text;
  SourceLocation Loc;
  int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace incline::frontend

#endif // INCLINE_FRONTEND_TOKEN_H
