//===- frontend/Lexer.cpp ------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/ErrorHandling.h"

#include <cctype>
#include <unordered_map>

using namespace incline;
using namespace incline::frontend;

std::string_view incline::frontend::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile: return "end of file";
  case TokenKind::Error: return "invalid token";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::IntLiteral: return "integer literal";
  case TokenKind::KwClass: return "'class'";
  case TokenKind::KwExtends: return "'extends'";
  case TokenKind::KwVar: return "'var'";
  case TokenKind::KwDef: return "'def'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwPrint: return "'print'";
  case TokenKind::KwNew: return "'new'";
  case TokenKind::KwTrue: return "'true'";
  case TokenKind::KwFalse: return "'false'";
  case TokenKind::KwNull: return "'null'";
  case TokenKind::KwThis: return "'this'";
  case TokenKind::KwInt: return "'int'";
  case TokenKind::KwBool: return "'bool'";
  case TokenKind::KwIs: return "'is'";
  case TokenKind::KwAs: return "'as'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Semicolon: return "';'";
  case TokenKind::Colon: return "':'";
  case TokenKind::Comma: return "','";
  case TokenKind::Dot: return "'.'";
  case TokenKind::Arrow: return "'->'";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::Bang: return "'!'";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::PipePipe: return "'||'";
  case TokenKind::EqEq: return "'=='";
  case TokenKind::BangEq: return "'!='";
  case TokenKind::Less: return "'<'";
  case TokenKind::LessEq: return "'<='";
  case TokenKind::Greater: return "'>'";
  case TokenKind::GreaterEq: return "'>='";
  case TokenKind::Assign: return "'='";
  }
  incline_unreachable("unknown token kind");
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Source.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (Pos < Source.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos < Source.size()) {
        advance();
        advance();
      }
      continue;
    }
    return;
  }
}

Token Lexer::make(TokenKind Kind, size_t Begin, SourceLocation Loc) const {
  Token T;
  T.Kind = Kind;
  T.Text = Source.substr(Begin, Pos - Begin);
  T.Loc = Loc;
  return T;
}

Token Lexer::lexIdentifierOrKeyword(SourceLocation Loc) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"class", TokenKind::KwClass},   {"extends", TokenKind::KwExtends},
      {"var", TokenKind::KwVar},       {"def", TokenKind::KwDef},
      {"if", TokenKind::KwIf},         {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},   {"return", TokenKind::KwReturn},
      {"print", TokenKind::KwPrint},   {"new", TokenKind::KwNew},
      {"true", TokenKind::KwTrue},     {"false", TokenKind::KwFalse},
      {"null", TokenKind::KwNull},     {"this", TokenKind::KwThis},
      {"int", TokenKind::KwInt},       {"bool", TokenKind::KwBool},
      {"is", TokenKind::KwIs},         {"as", TokenKind::KwAs},
  };
  size_t Begin = Pos;
  while (Pos < Source.size() &&
         (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_'))
    advance();
  Token T = make(TokenKind::Identifier, Begin, Loc);
  auto It = Keywords.find(T.Text);
  if (It != Keywords.end())
    T.Kind = It->second;
  return T;
}

Token Lexer::lexNumber(SourceLocation Loc) {
  size_t Begin = Pos;
  while (Pos < Source.size() &&
         std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  Token T = make(TokenKind::IntLiteral, Begin, Loc);
  int64_t Value = 0;
  for (char C : T.Text) {
    // Saturate instead of overflowing UB; MiniOO literals are modest.
    if (Value > (INT64_MAX - (C - '0')) / 10) {
      Value = INT64_MAX;
      break;
    }
    Value = Value * 10 + (C - '0');
  }
  T.IntValue = Value;
  return T;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLocation Loc = here();
  if (Pos >= Source.size())
    return make(TokenKind::EndOfFile, Pos, Loc);

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);

  size_t Begin = Pos;
  advance();
  switch (C) {
  case '(': return make(TokenKind::LParen, Begin, Loc);
  case ')': return make(TokenKind::RParen, Begin, Loc);
  case '{': return make(TokenKind::LBrace, Begin, Loc);
  case '}': return make(TokenKind::RBrace, Begin, Loc);
  case '[': return make(TokenKind::LBracket, Begin, Loc);
  case ']': return make(TokenKind::RBracket, Begin, Loc);
  case ';': return make(TokenKind::Semicolon, Begin, Loc);
  case ':': return make(TokenKind::Colon, Begin, Loc);
  case ',': return make(TokenKind::Comma, Begin, Loc);
  case '.': return make(TokenKind::Dot, Begin, Loc);
  case '+': return make(TokenKind::Plus, Begin, Loc);
  case '-':
    return make(match('>') ? TokenKind::Arrow : TokenKind::Minus, Begin, Loc);
  case '*': return make(TokenKind::Star, Begin, Loc);
  case '/': return make(TokenKind::Slash, Begin, Loc);
  case '%': return make(TokenKind::Percent, Begin, Loc);
  case '!':
    return make(match('=') ? TokenKind::BangEq : TokenKind::Bang, Begin, Loc);
  case '&':
    if (match('&'))
      return make(TokenKind::AmpAmp, Begin, Loc);
    return make(TokenKind::Error, Begin, Loc);
  case '|':
    if (match('|'))
      return make(TokenKind::PipePipe, Begin, Loc);
    return make(TokenKind::Error, Begin, Loc);
  case '=':
    return make(match('=') ? TokenKind::EqEq : TokenKind::Assign, Begin, Loc);
  case '<':
    return make(match('=') ? TokenKind::LessEq : TokenKind::Less, Begin, Loc);
  case '>':
    return make(match('=') ? TokenKind::GreaterEq : TokenKind::Greater, Begin,
                Loc);
  default:
    return make(TokenKind::Error, Begin, Loc);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::EndOfFile))
      return Tokens;
  }
}
