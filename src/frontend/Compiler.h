//===- frontend/Compiler.h - Source-to-IR driver ---------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call frontend driver: MiniOO source text in, verified SSA module
/// out (or diagnostics). This is the entry point examples, tests, and the
/// workload registry use.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_FRONTEND_COMPILER_H
#define INCLINE_FRONTEND_COMPILER_H

#include "frontend/SourceLocation.h"
#include "ir/Module.h"

#include <memory>
#include <string_view>
#include <vector>

namespace incline::frontend {

/// Result of compiling a MiniOO unit. `Mod` is null when `Diags` is
/// non-empty.
struct CompileResult {
  std::unique_ptr<ir::Module> Mod;
  std::vector<Diagnostic> Diags;

  bool succeeded() const { return Mod != nullptr; }
};

/// Lex + parse + sema + lower. On success the returned module passes the IR
/// verifier (asserted in debug builds).
CompileResult compileProgram(std::string_view Source);

/// Like compileProgram, but aborts with rendered diagnostics on failure.
/// For tests and benchmark workloads whose sources are known-good.
std::unique_ptr<ir::Module> compileOrDie(std::string_view Source);

} // namespace incline::frontend

#endif // INCLINE_FRONTEND_COMPILER_H
