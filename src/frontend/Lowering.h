//===- frontend/Lowering.h - AST to SSA IR ----------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a type-checked MiniOO Program to SSA IR using on-the-fly SSA
/// construction (Braun et al., CC'13): local variables are tracked per
/// block; phis are created lazily at joins and loop headers and trivial
/// phis are removed recursively. Method calls lower to VirtualCallInst
/// (dispatch is always virtual at this stage, like javac's invokevirtual);
/// devirtualization is the optimizer's and inliner's job, exactly as in the
/// paper's JVM setting.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_FRONTEND_LOWERING_H
#define INCLINE_FRONTEND_LOWERING_H

#include "frontend/Sema.h"
#include "ir/Module.h"

#include <memory>

namespace incline::frontend {

/// Lowers \p Prog (already checked by \p S) into a fresh Module whose class
/// hierarchy is moved from \p Classes. Must only be called after Sema::run
/// succeeded.
std::unique_ptr<ir::Module> lowerProgram(const Program &Prog, const Sema &S,
                                         types::ClassHierarchy Classes);

} // namespace incline::frontend

#endif // INCLINE_FRONTEND_LOWERING_H
