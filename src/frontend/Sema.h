//===- frontend/Sema.h - MiniOO semantic analysis --------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis: builds the ClassHierarchy from class declarations,
/// resolves types, assigns local-variable ids, resolves method and field
/// references, and type-checks every function body. After a successful run
/// the AST carries everything lowering needs.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_FRONTEND_SEMA_H
#define INCLINE_FRONTEND_SEMA_H

#include "frontend/Ast.h"
#include "types/ClassHierarchy.h"

#include <map>
#include <string>
#include <vector>

namespace incline::frontend {

/// Signature of a free function, for call checking and lowering.
struct FreeFunctionSig {
  std::vector<types::Type> ParamTypes;
  types::Type ReturnType;
  const FunctionDecl *Decl = nullptr;
};

/// Runs semantic analysis over a parsed Program.
class Sema {
public:
  /// \p Classes is populated by run() (must start empty).
  Sema(Program &Prog, types::ClassHierarchy &Classes)
      : Prog(Prog), Classes(Classes) {}

  /// Returns true on success (no diagnostics).
  bool run();

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  const std::map<std::string, FreeFunctionSig> &freeFunctions() const {
    return FreeFuncs;
  }

private:
  void error(SourceLocation Loc, std::string Message);

  // Phase 1-3: declaration registration.
  bool registerClasses();
  bool registerMembers();
  bool registerFreeFunctions();
  types::Type resolveTypeRef(const TypeRef &Ty);

  // Phase 4: body checking.
  void checkFunction(FunctionDecl &F);
  void checkStmt(Stmt *S);
  types::Type checkExpr(Expr *E);
  types::Type checkBinary(BinaryExpr *E);
  types::Type checkCall(CallExpr *E);
  types::Type checkMethodCall(MethodCallExpr *E);
  types::Type checkFieldAccess(FieldAccessExpr *E);
  void requireAssignable(types::Type From, types::Type To,
                         SourceLocation Loc, const char *Context);

  // Scope handling for the current function.
  struct Scope {
    std::map<std::string, int> Names;
  };
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  int declareLocal(const std::string &Name, types::Type Ty,
                   SourceLocation Loc);
  /// Returns the local id or -1 (with a diagnostic) when undeclared.
  int lookupLocal(const std::string &Name, SourceLocation Loc);

  Program &Prog;
  types::ClassHierarchy &Classes;
  std::vector<Diagnostic> Diags;
  std::map<std::string, FreeFunctionSig> FreeFuncs;

  // Current function state.
  FunctionDecl *CurFunc = nullptr;
  std::vector<Scope> Scopes;
  std::vector<types::Type> LocalTypes;
};

} // namespace incline::frontend

#endif // INCLINE_FRONTEND_SEMA_H
