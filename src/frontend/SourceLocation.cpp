//===- frontend/SourceLocation.cpp ------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/SourceLocation.h"

#include "support/StringUtils.h"

using namespace incline;
using namespace incline::frontend;

std::string Diagnostic::toString() const {
  return formatString("%u:%u: %s", Loc.Line, Loc.Column, Message.c_str());
}

std::string incline::frontend::renderDiagnostics(
    const std::vector<Diagnostic> &Diags) {
  std::string Result;
  for (const Diagnostic &D : Diags) {
    Result += D.toString();
    Result += '\n';
  }
  return Result;
}
