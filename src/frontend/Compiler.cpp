//===- frontend/Compiler.cpp -------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"

#include "frontend/Lexer.h"
#include "frontend/Lowering.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/IRVerifier.h"
#include "support/ErrorHandling.h"

#include <cstdio>

using namespace incline;
using namespace incline::frontend;

CompileResult incline::frontend::compileProgram(std::string_view Source) {
  CompileResult Result;

  Lexer Lex(Source);
  std::vector<Token> Tokens = Lex.lexAll();
  for (const Token &T : Tokens)
    if (T.is(TokenKind::Error))
      Result.Diags.push_back({T.Loc, "invalid character in input"});
  if (!Result.Diags.empty())
    return Result;

  Parser P(std::move(Tokens));
  std::unique_ptr<Program> Prog = P.parseProgram();
  Result.Diags = P.diagnostics();
  if (!Result.Diags.empty())
    return Result;

  types::ClassHierarchy Classes;
  Sema S(*Prog, Classes);
  if (!S.run()) {
    Result.Diags = S.diagnostics();
    return Result;
  }

  Result.Mod = lowerProgram(*Prog, S, std::move(Classes));
  // Lowering is deterministic, so the source text determines the module
  // content; seeding its digest here spares content-keyed caches (the
  // inliner's trial cache) from ever printing the module to fingerprint it.
  uint64_t SourceFp = 14695981039346656037ull;
  for (unsigned char C : Source) {
    SourceFp ^= C;
    SourceFp *= 1099511628211ull;
  }
  Result.Mod->seedContentFingerprint(SourceFp ? SourceFp : 1);
#ifndef NDEBUG
  std::vector<std::string> Problems = ir::verifyModule(*Result.Mod);
  if (!Problems.empty()) {
    for (const std::string &Problem : Problems)
      std::fprintf(stderr, "lowering verifier: %s\n", Problem.c_str());
    INCLINE_FATAL("frontend produced invalid IR");
  }
#endif
  return Result;
}

std::unique_ptr<ir::Module>
incline::frontend::compileOrDie(std::string_view Source) {
  CompileResult Result = compileProgram(Source);
  if (!Result.succeeded()) {
    std::fprintf(stderr, "%s", renderDiagnostics(Result.Diags).c_str());
    INCLINE_FATAL("MiniOO compilation failed");
  }
  return std::move(Result.Mod);
}
