//===- frontend/Lexer.h - MiniOO lexer ---------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written single-pass lexer for MiniOO. Supports `//` line comments
/// and `/* */` block comments. The source buffer must outlive the tokens
/// (token text is a view).
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_FRONTEND_LEXER_H
#define INCLINE_FRONTEND_LEXER_H

#include "frontend/Token.h"

#include <string_view>
#include <vector>

namespace incline::frontend {

/// Lexes MiniOO source into a token stream.
class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  /// Lexes the next token (EndOfFile at the end, repeatedly).
  Token next();

  /// Lexes the whole input. The final token is EndOfFile. Error tokens are
  /// included in-place so the parser can report them with positions.
  std::vector<Token> lexAll();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  SourceLocation here() const { return {Line, Column}; }
  Token make(TokenKind Kind, size_t Begin, SourceLocation Loc) const;
  Token lexIdentifierOrKeyword(SourceLocation Loc);
  Token lexNumber(SourceLocation Loc);

  std::string_view Source;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace incline::frontend

#endif // INCLINE_FRONTEND_LEXER_H
