//===- frontend/Lowering.cpp ---------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lowering.h"

#include "ir/IRBuilder.h"
#include "support/ErrorHandling.h"

#include <unordered_map>
#include <unordered_set>

using namespace incline;
using namespace incline::frontend;
using namespace incline::ir;
using types::Type;

namespace {

/// Lowers one function body with Braun-style on-the-fly SSA construction.
class FunctionLowering {
public:
  FunctionLowering(const FunctionDecl &Decl, const Sema &S, Module &M,
                   Function &F)
      : Decl(Decl), S(S), M(M), F(F), Builder(F) {}

  void run() {
    BasicBlock *Entry = F.addBlock("entry");
    Builder.setInsertBlock(Entry);
    sealBlock(Entry);
    // Parameters (including the receiver at slot 0 for methods) seed the
    // SSA variable state.
    for (size_t I = 0; I < F.numParams(); ++I)
      writeVariable(static_cast<int>(I), Entry, F.arg(I));

    lowerStmt(Decl.Body.get());

    // Implicit return at fall-through.
    if (Builder.insertBlock() && !Builder.isTerminated()) {
      Type RetTy = F.returnType();
      if (RetTy.isVoid())
        Builder.ret();
      else if (RetTy.isInt())
        Builder.ret(Builder.constInt(0));
      else if (RetTy.isBool())
        Builder.ret(Builder.constBool(false));
      else
        Builder.ret(Builder.constNull());
    }
    assert(IncompletePhis.empty() && "unsealed block at end of lowering");
  }

private:
  //===--------------------------------------------------------------------===//
  // SSA variable bookkeeping (Braun et al.)
  //===--------------------------------------------------------------------===//

  void writeVariable(int Var, BasicBlock *BB, Value *V) {
    CurrentDef[BB][Var] = V;
  }

  Value *readVariable(int Var, BasicBlock *BB) {
    auto BlockIt = CurrentDef.find(BB);
    if (BlockIt != CurrentDef.end()) {
      auto VarIt = BlockIt->second.find(Var);
      if (VarIt != BlockIt->second.end())
        return VarIt->second;
    }
    return readVariableRecursive(Var, BB);
  }

  Value *readVariableRecursive(int Var, BasicBlock *BB) {
    Value *V;
    if (!Sealed.count(BB)) {
      // Unknown predecessors: place an operandless phi and complete it when
      // the block is sealed.
      PhiInst *Phi = placePhi(Var, BB);
      IncompletePhis[BB].emplace_back(Var, Phi);
      V = Phi;
    } else if (BB->predecessors().size() == 1) {
      V = readVariable(Var, BB->predecessors()[0]);
    } else {
      assert(!BB->predecessors().empty() &&
             "reading a variable in an unreachable block");
      PhiInst *Phi = placePhi(Var, BB);
      writeVariable(Var, BB, Phi);
      V = addPhiOperands(Var, Phi);
    }
    writeVariable(Var, BB, V);
    return V;
  }

  PhiInst *placePhi(int Var, BasicBlock *BB) {
    Type Ty = Decl.LocalTypes[static_cast<size_t>(Var)];
    auto Phi = std::make_unique<PhiInst>(Ty);
    Phi->setProfileId(F.takeNextProfileId());
    PhiInst *Raw = Phi.get();
    BB->insertAt(BB->phis().size(), std::move(Phi));
    return Raw;
  }

  Value *addPhiOperands(int Var, PhiInst *Phi) {
    BasicBlock *BB = Phi->parent();
    for (BasicBlock *Pred : BB->predecessors())
      Phi->addIncoming(readVariable(Var, Pred), Pred);
    return tryRemoveTrivialPhi(Phi);
  }

  Value *tryRemoveTrivialPhi(PhiInst *Phi) {
    Value *Same = Phi->uniqueIncomingValue();
    if (!Same)
      return Phi; // Non-trivial (or, pathological: only self-references —
                  // impossible for variables initialized at declaration).
    // Collect phi users before rewriting, to recurse afterwards.
    std::vector<PhiInst *> PhiUsers;
    for (Instruction *User : Phi->users())
      if (auto *P = dyn_cast<PhiInst>(User); P && P != Phi)
        PhiUsers.push_back(P);
    Phi->replaceAllUsesWith(Same);
    // The SSA variable maps may still point at the dead phi.
    for (auto &[Block, Vars] : CurrentDef)
      for (auto &[Var, Val] : Vars)
        if (Val == Phi)
          Val = Same;
    Phi->parent()->erase(Phi);
    for (PhiInst *P : PhiUsers)
      tryRemoveTrivialPhi(P);
    return Same;
  }

  void sealBlock(BasicBlock *BB) {
    assert(!Sealed.count(BB) && "sealing a block twice");
    auto It = IncompletePhis.find(BB);
    Sealed.insert(BB);
    if (It == IncompletePhis.end())
      return;
    std::vector<std::pair<int, PhiInst *>> Pending = std::move(It->second);
    IncompletePhis.erase(It);
    for (auto &[Var, Phi] : Pending)
      addPhiOperands(Var, Phi);
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  bool reachable() const {
    return Builder.insertBlock() && !Builder.isTerminated();
  }

  void lowerStmt(const Stmt *S) {
    if (!reachable())
      return; // Dead code after return.
    switch (S->kind()) {
    case StmtKind::Block:
      for (const StmtPtr &Child : cast<BlockStmt>(S)->statements()) {
        if (!reachable())
          return;
        lowerStmt(Child.get());
      }
      return;
    case StmtKind::VarDecl: {
      const auto *Decl = cast<VarDeclStmt>(S);
      Value *Init = lowerExpr(Decl->init());
      writeVariable(Decl->localId(), Builder.insertBlock(), Init);
      return;
    }
    case StmtKind::AssignLocal: {
      const auto *Assign = cast<AssignLocalStmt>(S);
      Value *V = lowerExpr(Assign->value());
      writeVariable(Assign->localId(), Builder.insertBlock(), V);
      return;
    }
    case StmtKind::AssignField: {
      const auto *Assign = cast<AssignFieldStmt>(S);
      Value *Obj = lowerExpr(Assign->object());
      Value *V = lowerExpr(Assign->value());
      Builder.storeField(Obj, Assign->fieldSlot(), V);
      return;
    }
    case StmtKind::AssignIndex: {
      const auto *Assign = cast<AssignIndexStmt>(S);
      Value *Arr = lowerExpr(Assign->array());
      Value *Idx = lowerExpr(Assign->index());
      Value *V = lowerExpr(Assign->value());
      Builder.storeIndex(Arr, Idx, V);
      return;
    }
    case StmtKind::If:
      lowerIf(cast<IfStmt>(S));
      return;
    case StmtKind::While:
      lowerWhile(cast<WhileStmt>(S));
      return;
    case StmtKind::Return: {
      const auto *Ret = cast<ReturnStmt>(S);
      Value *V = Ret->value() ? lowerExpr(Ret->value()) : nullptr;
      Builder.ret(V);
      return;
    }
    case StmtKind::Print:
      Builder.print(lowerExpr(cast<PrintStmt>(S)->value()));
      return;
    case StmtKind::ExprStmt:
      lowerExpr(cast<ExprStmt>(S)->expr());
      return;
    }
    incline_unreachable("unknown statement kind in lowering");
  }

  void lowerIf(const IfStmt *If) {
    Value *Cond = lowerExpr(If->condition());
    BasicBlock *ThenBB = F.addBlock("then");
    BasicBlock *ElseBB = If->elseStmt() ? F.addBlock("else") : nullptr;
    BasicBlock *MergeBB = F.addBlock("merge");

    Builder.branch(Cond, ThenBB, ElseBB ? ElseBB : MergeBB);
    sealBlock(ThenBB);
    if (ElseBB)
      sealBlock(ElseBB);

    Builder.setInsertBlock(ThenBB);
    lowerStmt(If->thenStmt());
    if (reachable())
      Builder.jump(MergeBB);

    if (ElseBB) {
      Builder.setInsertBlock(ElseBB);
      lowerStmt(If->elseStmt());
      if (reachable())
        Builder.jump(MergeBB);
    }

    sealBlock(MergeBB);
    if (MergeBB->predecessors().empty()) {
      // Both arms returned: everything after the if is unreachable.
      F.removeBlock(MergeBB);
      Builder.setInsertBlock(nullptr);
      return;
    }
    Builder.setInsertBlock(MergeBB);
  }

  void lowerWhile(const WhileStmt *While) {
    BasicBlock *CondBB = F.addBlock("while.cond");
    BasicBlock *BodyBB = F.addBlock("while.body");
    BasicBlock *ExitBB = F.addBlock("while.exit");

    Builder.jump(CondBB);
    // CondBB stays unsealed until the latch edge exists.
    Builder.setInsertBlock(CondBB);
    Value *Cond = lowerExpr(While->condition());
    Builder.branch(Cond, BodyBB, ExitBB);
    sealBlock(BodyBB);

    Builder.setInsertBlock(BodyBB);
    lowerStmt(While->body());
    if (reachable())
      Builder.jump(CondBB);
    sealBlock(CondBB);
    sealBlock(ExitBB);
    Builder.setInsertBlock(ExitBB);
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Value *lowerExpr(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return Builder.constInt(cast<IntLitExpr>(E)->value());
    case ExprKind::BoolLit:
      return Builder.constBool(cast<BoolLitExpr>(E)->value());
    case ExprKind::NullLit:
      return Builder.constNull();
    case ExprKind::This:
      return readVariable(0, Builder.insertBlock());
    case ExprKind::VarRef: {
      const auto *Var = cast<VarRefExpr>(E);
      assert(Var->localId() >= 0 && "unresolved variable in lowering");
      return readVariable(Var->localId(), Builder.insertBlock());
    }
    case ExprKind::Binary: {
      const auto *Bin = cast<BinaryExpr>(E);
      Value *L = lowerExpr(Bin->lhs());
      Value *R = lowerExpr(Bin->rhs());
      return Builder.binop(binOpcode(Bin->op()), L, R);
    }
    case ExprKind::Unary: {
      const auto *Un = cast<UnaryExpr>(E);
      Value *V = lowerExpr(Un->sub());
      return Builder.unop(Un->op() == UnaryExpr::Op::Neg
                              ? UnOpInst::Opcode::Neg
                              : UnOpInst::Opcode::Not,
                          V);
    }
    case ExprKind::Call: {
      const auto *Call = cast<CallExpr>(E);
      std::vector<Value *> Args;
      for (const ExprPtr &Arg : Call->args())
        Args.push_back(lowerExpr(Arg.get()));
      return Builder.call(Call->callee(), Args, E->type());
    }
    case ExprKind::MethodCall: {
      const auto *MCall = cast<MethodCallExpr>(E);
      Value *Recv = lowerExpr(MCall->receiver());
      std::vector<Value *> Args;
      for (const ExprPtr &Arg : MCall->args())
        Args.push_back(lowerExpr(Arg.get()));
      return Builder.virtualCall(MCall->method(), Recv, Args, E->type());
    }
    case ExprKind::FieldAccess: {
      const auto *FA = cast<FieldAccessExpr>(E);
      Value *Obj = lowerExpr(FA->object());
      if (FA->isArrayLength())
        return Builder.arrayLength(Obj);
      return Builder.loadField(Obj, FA->fieldSlot(), E->type());
    }
    case ExprKind::Index: {
      const auto *Idx = cast<IndexExpr>(E);
      Value *Arr = lowerExpr(Idx->array());
      Value *Index = lowerExpr(Idx->index());
      return Builder.loadIndex(Arr, Index, E->type());
    }
    case ExprKind::NewObject:
      return Builder.newObject(cast<NewObjectExpr>(E)->classId());
    case ExprKind::NewArray: {
      const auto *New = cast<NewArrayExpr>(E);
      Value *Len = lowerExpr(New->length());
      return Builder.newArray(E->type(), Len);
    }
    case ExprKind::Is: {
      const auto *Is = cast<IsExpr>(E);
      return Builder.instanceOf(lowerExpr(Is->object()), Is->classId());
    }
    case ExprKind::As: {
      const auto *As = cast<AsExpr>(E);
      return Builder.checkCast(lowerExpr(As->object()), As->classId());
    }
    }
    incline_unreachable("unknown expression kind in lowering");
  }

  static BinOpInst::Opcode binOpcode(BinaryExpr::Op Op) {
    using In = BinaryExpr::Op;
    using Out = BinOpInst::Opcode;
    switch (Op) {
    case In::Add: return Out::Add;
    case In::Sub: return Out::Sub;
    case In::Mul: return Out::Mul;
    case In::Div: return Out::Div;
    case In::Mod: return Out::Mod;
    case In::And: return Out::And;
    case In::Or: return Out::Or;
    case In::Eq: return Out::Eq;
    case In::Ne: return Out::Ne;
    case In::Lt: return Out::Lt;
    case In::Le: return Out::Le;
    case In::Gt: return Out::Gt;
    case In::Ge: return Out::Ge;
    }
    incline_unreachable("unknown binary op");
  }

  const FunctionDecl &Decl;
  const Sema &S;
  Module &M;
  Function &F;
  IRBuilder Builder;

  std::unordered_map<BasicBlock *, std::unordered_map<int, Value *>>
      CurrentDef;
  std::unordered_set<BasicBlock *> Sealed;
  std::unordered_map<BasicBlock *, std::vector<std::pair<int, PhiInst *>>>
      IncompletePhis;
};

/// Creates the Function shell (signature) for \p Decl in \p M.
Function *createShell(const FunctionDecl &Decl, const Sema &S,
                      const types::ClassHierarchy &Classes, Module &M) {
  std::vector<Type> ParamTypes;
  std::vector<std::string> ParamNames;
  if (Decl.isMethod()) {
    std::optional<int> OwnerId = Classes.classIdOf(Decl.OwnerClass);
    assert(OwnerId && "method owner must exist after sema");
    ParamTypes.push_back(Type::object(*OwnerId));
    ParamNames.push_back("this");
  }
  for (const ParamDecl &P : Decl.Params) {
    assert(P.LocalId >= 0 && "params must be resolved by sema");
    ParamTypes.push_back(Decl.LocalTypes[static_cast<size_t>(P.LocalId)]);
    ParamNames.push_back(P.Name);
  }
  Type RetTy;
  if (Decl.isMethod()) {
    std::optional<int> OwnerId = Classes.classIdOf(Decl.OwnerClass);
    const types::MethodInfo *Info =
        Classes.resolveMethod(*OwnerId, Decl.Name);
    assert(Info && "method must be registered");
    RetTy = Info->ReturnType;
  } else {
    RetTy = S.freeFunctions().at(Decl.Name).ReturnType;
  }
  return M.addFunction(Decl.Symbol, std::move(ParamTypes),
                       std::move(ParamNames), RetTy);
}

} // namespace

std::unique_ptr<Module>
incline::frontend::lowerProgram(const Program &Prog, const Sema &S,
                                types::ClassHierarchy Classes) {
  auto M = std::make_unique<Module>();
  M->classes() = std::move(Classes);

  // Shells first so calls resolve regardless of declaration order.
  std::vector<std::pair<const FunctionDecl *, Function *>> Work;
  for (const auto &C : Prog.Classes)
    for (const auto &Method : C->Methods)
      Work.emplace_back(Method.get(),
                        createShell(*Method, S, M->classes(), *M));
  for (const auto &F : Prog.Functions)
    Work.emplace_back(F.get(), createShell(*F, S, M->classes(), *M));

  for (auto &[Decl, F] : Work) {
    FunctionLowering Lowering(*Decl, S, *M, *F);
    Lowering.run();
  }
  return M;
}
