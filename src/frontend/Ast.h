//===- frontend/Ast.h - MiniOO abstract syntax tree ------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniOO AST. Nodes carry source locations for diagnostics plus slots
/// that semantic analysis fills in (resolved types, local variable ids,
/// field slots, resolved methods) so lowering never re-resolves names.
///
/// MiniOO in one screen:
/// \code
///   class Shape { var area: int; def describe(): int { return this.area; } }
///   class Circle extends Shape { def describe(): int { return 314; } }
///   def main() { var s: Shape = new Circle(); print(s.describe()); }
/// \endcode
///
/// Notes: single inheritance, virtual dispatch on all method calls,
/// `e is C` / `e as C` type test and cast, one-dimensional `int[]`/`C[]`
/// arrays with `.length`, non-short-circuit `&&`/`||` (both operands are
/// always evaluated), and a `print(int|bool)` intrinsic.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_FRONTEND_AST_H
#define INCLINE_FRONTEND_AST_H

#include "frontend/SourceLocation.h"
#include "support/Casting.h"
#include "types/Type.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace incline::types {
struct MethodInfo;
}

namespace incline::frontend {

/// An unresolved syntactic type: `int`, `bool`, `C`, `int[]`, `C[]`, or the
/// implicit `void` of a procedure.
struct TypeRef {
  enum class Kind : uint8_t { Void, Int, Bool, Named, IntArray, NamedArray };
  Kind K = Kind::Void;
  std::string Name; ///< For Named / NamedArray.
  SourceLocation Loc;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLit,
  BoolLit,
  NullLit,
  This,
  VarRef,
  Binary,
  Unary,
  Call,
  MethodCall,
  FieldAccess,
  Index,
  NewObject,
  NewArray,
  Is,
  As,
};

/// Base class of expressions. `type()` is set by Sema.
class Expr {
public:
  virtual ~Expr() = default;
  ExprKind kind() const { return Kind; }
  SourceLocation loc() const { return Loc; }

  types::Type type() const { return Ty; }
  void setType(types::Type T) { Ty = T; }

protected:
  Expr(ExprKind Kind, SourceLocation Loc) : Kind(Kind), Loc(Loc) {}

private:
  ExprKind Kind;
  SourceLocation Loc;
  types::Type Ty;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLocation Loc)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
  int64_t value() const { return Value; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }

private:
  int64_t Value;
};

class BoolLitExpr : public Expr {
public:
  BoolLitExpr(bool Value, SourceLocation Loc)
      : Expr(ExprKind::BoolLit, Loc), Value(Value) {}
  bool value() const { return Value; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::BoolLit; }

private:
  bool Value;
};

class NullLitExpr : public Expr {
public:
  explicit NullLitExpr(SourceLocation Loc) : Expr(ExprKind::NullLit, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::NullLit; }
};

class ThisExpr : public Expr {
public:
  explicit ThisExpr(SourceLocation Loc) : Expr(ExprKind::This, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::This; }
};

/// Reference to a local variable or parameter. Sema sets `localId()`.
class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, SourceLocation Loc)
      : Expr(ExprKind::VarRef, Loc), Name(std::move(Name)) {}
  const std::string &name() const { return Name; }
  int localId() const { return LocalId; }
  void setLocalId(int Id) { LocalId = Id; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::VarRef; }

private:
  std::string Name;
  int LocalId = -1;
};

class BinaryExpr : public Expr {
public:
  enum class Op : uint8_t {
    Add, Sub, Mul, Div, Mod,
    And, Or,
    Eq, Ne, Lt, Le, Gt, Ge,
  };

  BinaryExpr(Op O, ExprPtr Lhs, ExprPtr Rhs, SourceLocation Loc)
      : Expr(ExprKind::Binary, Loc), O(O), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  Op op() const { return O; }
  Expr *lhs() const { return Lhs.get(); }
  Expr *rhs() const { return Rhs.get(); }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  Op O;
  ExprPtr Lhs, Rhs;
};

class UnaryExpr : public Expr {
public:
  enum class Op : uint8_t { Neg, Not };
  UnaryExpr(Op O, ExprPtr Sub, SourceLocation Loc)
      : Expr(ExprKind::Unary, Loc), O(O), Sub(std::move(Sub)) {}
  Op op() const { return O; }
  Expr *sub() const { return Sub.get(); }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

private:
  Op O;
  ExprPtr Sub;
};

/// Call to a free function: `f(a, b)`.
class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLocation Loc)
      : Expr(ExprKind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  const std::string &callee() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
};

/// Virtual method call: `recv.m(a, b)`. Sema resolves the static target.
class MethodCallExpr : public Expr {
public:
  MethodCallExpr(ExprPtr Receiver, std::string Method,
                 std::vector<ExprPtr> Args, SourceLocation Loc)
      : Expr(ExprKind::MethodCall, Loc), Receiver(std::move(Receiver)),
        Method(std::move(Method)), Args(std::move(Args)) {}
  Expr *receiver() const { return Receiver.get(); }
  const std::string &method() const { return Method; }
  const std::vector<ExprPtr> &args() const { return Args; }
  const types::MethodInfo *resolved() const { return Resolved; }
  void setResolved(const types::MethodInfo *M) { Resolved = M; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::MethodCall;
  }

private:
  ExprPtr Receiver;
  std::string Method;
  std::vector<ExprPtr> Args;
  const types::MethodInfo *Resolved = nullptr;
};

/// Field read `obj.f`, or `arr.length` (Sema sets `isArrayLength()`).
class FieldAccessExpr : public Expr {
public:
  FieldAccessExpr(ExprPtr Object, std::string Field, SourceLocation Loc)
      : Expr(ExprKind::FieldAccess, Loc), Object(std::move(Object)),
        Field(std::move(Field)) {}
  Expr *object() const { return Object.get(); }
  /// Releases ownership of the object expression (used when the parser
  /// re-shapes `obj.f = v` into an AssignFieldStmt).
  Expr *takeObject() { return Object.release(); }
  const std::string &field() const { return Field; }
  unsigned fieldSlot() const { return FieldSlot; }
  void setFieldSlot(unsigned Slot) { FieldSlot = Slot; }
  bool isArrayLength() const { return ArrayLength; }
  void setIsArrayLength(bool B) { ArrayLength = B; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FieldAccess;
  }

private:
  ExprPtr Object;
  std::string Field;
  unsigned FieldSlot = 0;
  bool ArrayLength = false;
};

/// Array element read `arr[i]`.
class IndexExpr : public Expr {
public:
  IndexExpr(ExprPtr Array, ExprPtr Index, SourceLocation Loc)
      : Expr(ExprKind::Index, Loc), Array(std::move(Array)),
        Index(std::move(Index)) {}
  Expr *array() const { return Array.get(); }
  Expr *index() const { return Index.get(); }
  /// Ownership-releasing accessors for the parser's assignment re-shaping.
  Expr *takeArray() { return Array.release(); }
  Expr *takeIndex() { return Index.release(); }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Index; }

private:
  ExprPtr Array, Index;
};

/// `new C()`.
class NewObjectExpr : public Expr {
public:
  NewObjectExpr(std::string ClassName, SourceLocation Loc)
      : Expr(ExprKind::NewObject, Loc), ClassName(std::move(ClassName)) {}
  const std::string &className() const { return ClassName; }
  int classId() const { return ClassId; }
  void setClassId(int Id) { ClassId = Id; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::NewObject;
  }

private:
  std::string ClassName;
  int ClassId = -1;
};

/// `new int[n]` / `new C[n]`.
class NewArrayExpr : public Expr {
public:
  NewArrayExpr(TypeRef ElemTy, ExprPtr Length, SourceLocation Loc)
      : Expr(ExprKind::NewArray, Loc), ElemTy(std::move(ElemTy)),
        Length(std::move(Length)) {}
  const TypeRef &elemType() const { return ElemTy; }
  Expr *length() const { return Length.get(); }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::NewArray;
  }

private:
  TypeRef ElemTy;
  ExprPtr Length;
};

/// `e is C`.
class IsExpr : public Expr {
public:
  IsExpr(ExprPtr Object, std::string ClassName, SourceLocation Loc)
      : Expr(ExprKind::Is, Loc), Object(std::move(Object)),
        ClassName(std::move(ClassName)) {}
  Expr *object() const { return Object.get(); }
  const std::string &className() const { return ClassName; }
  int classId() const { return ClassId; }
  void setClassId(int Id) { ClassId = Id; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Is; }

private:
  ExprPtr Object;
  std::string ClassName;
  int ClassId = -1;
};

/// `e as C`.
class AsExpr : public Expr {
public:
  AsExpr(ExprPtr Object, std::string ClassName, SourceLocation Loc)
      : Expr(ExprKind::As, Loc), Object(std::move(Object)),
        ClassName(std::move(ClassName)) {}
  Expr *object() const { return Object.get(); }
  const std::string &className() const { return ClassName; }
  int classId() const { return ClassId; }
  void setClassId(int Id) { ClassId = Id; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::As; }

private:
  ExprPtr Object;
  std::string ClassName;
  int ClassId = -1;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Block,
  VarDecl,
  AssignLocal,
  AssignField,
  AssignIndex,
  If,
  While,
  Return,
  Print,
  ExprStmt,
};

class Stmt {
public:
  virtual ~Stmt() = default;
  StmtKind kind() const { return Kind; }
  SourceLocation loc() const { return Loc; }

protected:
  Stmt(StmtKind Kind, SourceLocation Loc) : Kind(Kind), Loc(Loc) {}

private:
  StmtKind Kind;
  SourceLocation Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Stmts, SourceLocation Loc)
      : Stmt(StmtKind::Block, Loc), Stmts(std::move(Stmts)) {}
  const std::vector<StmtPtr> &statements() const { return Stmts; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Block; }

private:
  std::vector<StmtPtr> Stmts;
};

/// `var x: T = init;` (type optional — inferred from the initializer).
class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(std::string Name, std::optional<TypeRef> DeclaredTy,
              ExprPtr Init, SourceLocation Loc)
      : Stmt(StmtKind::VarDecl, Loc), Name(std::move(Name)),
        DeclaredTy(std::move(DeclaredTy)), Init(std::move(Init)) {}
  const std::string &name() const { return Name; }
  const std::optional<TypeRef> &declaredType() const { return DeclaredTy; }
  Expr *init() const { return Init.get(); }
  int localId() const { return LocalId; }
  void setLocalId(int Id) { LocalId = Id; }
  types::Type varType() const { return VarTy; }
  void setVarType(types::Type T) { VarTy = T; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::VarDecl; }

private:
  std::string Name;
  std::optional<TypeRef> DeclaredTy;
  ExprPtr Init;
  int LocalId = -1;
  types::Type VarTy;
};

/// `x = e;`
class AssignLocalStmt : public Stmt {
public:
  AssignLocalStmt(std::string Name, ExprPtr Value, SourceLocation Loc)
      : Stmt(StmtKind::AssignLocal, Loc), Name(std::move(Name)),
        Value(std::move(Value)) {}
  const std::string &name() const { return Name; }
  Expr *value() const { return Value.get(); }
  int localId() const { return LocalId; }
  void setLocalId(int Id) { LocalId = Id; }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::AssignLocal;
  }

private:
  std::string Name;
  ExprPtr Value;
  int LocalId = -1;
};

/// `obj.f = e;`
class AssignFieldStmt : public Stmt {
public:
  AssignFieldStmt(ExprPtr Object, std::string Field, ExprPtr Value,
                  SourceLocation Loc)
      : Stmt(StmtKind::AssignField, Loc), Object(std::move(Object)),
        Field(std::move(Field)), Value(std::move(Value)) {}
  Expr *object() const { return Object.get(); }
  const std::string &field() const { return Field; }
  Expr *value() const { return Value.get(); }
  unsigned fieldSlot() const { return FieldSlot; }
  void setFieldSlot(unsigned Slot) { FieldSlot = Slot; }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::AssignField;
  }

private:
  ExprPtr Object;
  std::string Field;
  ExprPtr Value;
  unsigned FieldSlot = 0;
};

/// `arr[i] = e;`
class AssignIndexStmt : public Stmt {
public:
  AssignIndexStmt(ExprPtr Array, ExprPtr Index, ExprPtr Value,
                  SourceLocation Loc)
      : Stmt(StmtKind::AssignIndex, Loc), Array(std::move(Array)),
        Index(std::move(Index)), Value(std::move(Value)) {}
  Expr *array() const { return Array.get(); }
  Expr *index() const { return Index.get(); }
  Expr *value() const { return Value.get(); }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::AssignIndex;
  }

private:
  ExprPtr Array, Index, Value;
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLocation Loc)
      : Stmt(StmtKind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  Expr *condition() const { return Cond.get(); }
  Stmt *thenStmt() const { return Then.get(); }
  Stmt *elseStmt() const { return Else.get(); } ///< May be null.
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then, Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLocation Loc)
      : Stmt(StmtKind::While, Loc), Cond(std::move(Cond)),
        Body(std::move(Body)) {}
  Expr *condition() const { return Cond.get(); }
  Stmt *body() const { return Body.get(); }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, SourceLocation Loc)
      : Stmt(StmtKind::Return, Loc), Value(std::move(Value)) {}
  Expr *value() const { return Value.get(); } ///< May be null.
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }

private:
  ExprPtr Value;
};

class PrintStmt : public Stmt {
public:
  PrintStmt(ExprPtr Value, SourceLocation Loc)
      : Stmt(StmtKind::Print, Loc), Value(std::move(Value)) {}
  Expr *value() const { return Value.get(); }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Print; }

private:
  ExprPtr Value;
};

/// A call evaluated for effect: `f(x);` / `o.m();`.
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLocation Loc)
      : Stmt(StmtKind::ExprStmt, Loc), E(std::move(E)) {}
  Expr *expr() const { return E.get(); }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::ExprStmt; }

private:
  ExprPtr E;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct ParamDecl {
  std::string Name;
  TypeRef Ty;
  SourceLocation Loc;
  int LocalId = -1; ///< Assigned by Sema.
};

/// A method or a free function. For methods, `OwnerClass` names the class.
struct FunctionDecl {
  std::string Name;
  std::string OwnerClass; ///< Empty for free functions.
  std::vector<ParamDecl> Params;
  TypeRef ReturnTy; ///< Kind::Void when omitted.
  std::unique_ptr<BlockStmt> Body;
  SourceLocation Loc;

  /// Sema results.
  std::string Symbol;  ///< "main" or "Class.method".
  int NumLocals = 0;   ///< Locals + params, for the SSA construction.
  std::vector<types::Type> LocalTypes; ///< Indexed by local id.

  bool isMethod() const { return !OwnerClass.empty(); }
};

struct FieldDecl {
  std::string Name;
  TypeRef Ty;
  SourceLocation Loc;
};

struct ClassDecl {
  std::string Name;
  std::string SuperName; ///< Empty when no `extends`.
  std::vector<FieldDecl> Fields;
  std::vector<std::unique_ptr<FunctionDecl>> Methods;
  SourceLocation Loc;
};

/// A parsed compilation unit.
struct Program {
  std::vector<std::unique_ptr<ClassDecl>> Classes;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;
};

} // namespace incline::frontend

#endif // INCLINE_FRONTEND_AST_H
