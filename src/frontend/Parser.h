//===- frontend/Parser.h - MiniOO recursive-descent parser ----------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent parser with operator-precedence expression parsing.
/// Errors are collected as diagnostics; on an error the parser synchronizes
/// to the next declaration/statement boundary and continues, so a single
/// run reports multiple problems.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_FRONTEND_PARSER_H
#define INCLINE_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Token.h"

#include <memory>
#include <vector>

namespace incline::frontend {

/// Parses a token stream into a Program.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  /// Parses the whole unit. Check `diagnostics()` before using the result.
  std::unique_ptr<Program> parseProgram();

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

private:
  // Token cursor.
  const Token &peek(size_t Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token advance();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool match(TokenKind Kind);
  /// Consumes a token of \p Kind or reports \p What and returns false.
  bool expect(TokenKind Kind, const char *What);
  void error(SourceLocation Loc, std::string Message);
  void synchronizeToDecl();
  void synchronizeToStmt();

  // Declarations.
  std::unique_ptr<ClassDecl> parseClass();
  std::unique_ptr<FunctionDecl> parseFunction(std::string OwnerClass);
  bool parseParams(std::vector<ParamDecl> &Params);
  TypeRef parseType();

  // Statements.
  std::unique_ptr<BlockStmt> parseBlock();
  StmtPtr parseStatement();
  StmtPtr parseVarDecl();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseReturn();
  StmtPtr parsePrint();
  StmtPtr parseExprOrAssign();

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseEquality();
  ExprPtr parseRelational();  // Also handles `is` / `as`.
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  bool parseArgs(std::vector<ExprPtr> &Args);

  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::vector<Diagnostic> Diags;
};

} // namespace incline::frontend

#endif // INCLINE_FRONTEND_PARSER_H
