//===- frontend/SourceLocation.h - Positions and diagnostics --------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source positions (1-based line/column) and the diagnostic record used by
/// the MiniOO lexer, parser and semantic analyzer. The frontend never
/// throws: phases collect diagnostics and callers inspect them.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_FRONTEND_SOURCELOCATION_H
#define INCLINE_FRONTEND_SOURCELOCATION_H

#include <string>
#include <vector>

namespace incline::frontend {

/// A position in MiniOO source text.
struct SourceLocation {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line > 0; }
};

/// One frontend error message anchored at a source position.
struct Diagnostic {
  SourceLocation Loc;
  std::string Message;

  /// "line:col: message" rendering.
  std::string toString() const;
};

/// Renders a diagnostic list, one per line.
std::string renderDiagnostics(const std::vector<Diagnostic> &Diags);

} // namespace incline::frontend

#endif // INCLINE_FRONTEND_SOURCELOCATION_H
