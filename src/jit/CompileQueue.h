//===- jit/CompileQueue.h - Bounded, prioritized compile-task queue --------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hand-off point between the mutator and the compile worker pool: a
/// bounded, thread-safe task queue. Tasks carry a snapshot of the profile
/// table taken at enqueue time, so a worker compiles against exactly the
/// profiles the mutator had when the method crossed the compile threshold
/// — the same input a synchronous compile would have seen. That snapshot is
/// what makes `--jit-mode=deterministic` bit-identical to sync mode.
///
/// Ordering is a queue policy:
///  * `PopOrder::Priority` (async mode) pops the hottest task first,
///    breaking ties by enqueue order — the classic JIT compile queue, where
///    a method that got hot later but hotter jumps the line.
///  * `PopOrder::Fifo` (deterministic mode) pops strictly in enqueue order.
///
/// Backpressure is non-blocking by design: when the queue is full the
/// enqueue is rejected (`Outcome::Full`) and the mutator keeps running
/// interpreted — a JIT must never stall the application because the
/// compiler fell behind. The runtime retries on a later invocation (the
/// hotness counter keeps climbing). Duplicate symbols are rejected at the
/// queue level too (`Outcome::Duplicate`) as a second line of defense
/// behind the runtime's in-flight bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_JIT_COMPILEQUEUE_H
#define INCLINE_JIT_COMPILEQUEUE_H

#include "opt/SpeculativeDevirt.h"
#include "profile/ProfileData.h"
#include "support/Cancellation.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace incline::opt {
class ModuleReachability;
}

namespace incline::jit {

/// One unit of background compilation work.
struct CompileTask {
  /// What the worker compiles for \p Symbol.
  enum class Kind : uint8_t {
    Method, ///< The whole method, entered at function entry.
    Osr     ///< A loop-entry OSR variant anchored at `OsrHeaderBlockId`.
  };

  std::string Symbol;
  Kind TaskKind = Kind::Method;
  /// Baseline block id of the anchored loop header (OSR tasks only).
  unsigned OsrHeaderBlockId = 0;
  /// Hotness counter value at enqueue time (the pop priority).
  uint64_t Hotness = 0;
  /// Enqueue order, assigned by the queue: 0, 1, 2, ... This is also the
  /// deterministic-mode install order and the priority tie-break.
  uint64_t SequenceNo = 0;
  /// Profile state at enqueue time; the worker compiles against this.
  profile::ProfileTable ProfilesSnapshot;
  /// Speculation blacklist at enqueue time, same rationale: a worker never
  /// reads the runtime's live blacklist (the mutator mutates it on deopt),
  /// and a deterministic-mode compile sees exactly what a synchronous
  /// compile at the enqueue safepoint would have seen.
  opt::SpeculationBlacklist BlacklistSnapshot;
  /// Cold-branch prune blacklist at enqueue time — (method, cold-target
  /// baseline block id) pairs whose uncommon trap fired. Same snapshot
  /// discipline as BlacklistSnapshot.
  opt::SpeculationBlacklist PruneBlacklistSnapshot;
  /// Chaos hook forcing prune decisions (see JitConfig::ForceColdBranch);
  /// copied per task because the pool never sees the runtime's config. Must
  /// be a pure function, so sharing it across threads is safe.
  std::function<bool(std::string_view, unsigned)> ForceColdBranch;
  /// Module reachability shared with the compile (null = no tree shaking).
  /// Immutable after compute, so workers read it lock-free; the shared_ptr
  /// keeps it alive across the runtime's lifetime transitions.
  std::shared_ptr<const opt::ModuleReachability> Reachable;
  /// Supervision token for this compile (budgets + cooperative cancel);
  /// shared so the mutator can cancel while the worker charges. Null when
  /// the runtime is configured unsupervised.
  std::shared_ptr<support::CancellationToken> Cancel;
  /// Degradation-ladder rung this task compiles at (0 = full optimization;
  /// see JitRuntime's ladder). Recorded in the compile-stream fingerprint
  /// for nonzero rungs.
  unsigned Rung = 0;
  /// True for a re-heated ladder *upgrade* attempt: the anchor already has
  /// degraded code installed and this task compiles one rung better. The
  /// publish path replaces the installed body on success instead of
  /// discarding the outcome as stale.
  bool Upgrade = false;

  /// Queue-dedup and compile-stream key: the bare symbol for method tasks,
  /// `symbol@osr<header>` for OSR tasks — a method compilation and an OSR
  /// variant of the same method may be in flight simultaneously, but two
  /// OSR requests for the same (method, header) collapse.
  std::string dedupKey() const;
};

/// Thread-safe bounded compile-task queue with deduplication.
class CompileQueue {
public:
  enum class PopOrder : uint8_t {
    Priority, ///< Hottest first, ties by enqueue order (async mode).
    Fifo      ///< Strict enqueue order (deterministic mode).
  };

  enum class Outcome : uint8_t {
    Enqueued,
    Full,     ///< Bounded capacity reached; task rejected (backpressure).
    Duplicate ///< Symbol already queued.
  };

  explicit CompileQueue(size_t Capacity, PopOrder Order = PopOrder::Priority)
      : Capacity(Capacity == 0 ? 1 : Capacity), Order(Order) {}

  /// Attempts to enqueue; never blocks. On success the task receives its
  /// sequence number and workers are woken.
  Outcome tryEnqueue(CompileTask Task);

  /// Blocks until a task is available or the queue is closed; nullopt on
  /// close. Workers call this.
  std::optional<CompileTask> pop();

  /// Wakes every waiting worker and makes all subsequent pops fail.
  /// Already-queued tasks are dropped (the pool drains before closing when
  /// a graceful shutdown is wanted). Returns how many tasks were dropped,
  /// so drain waiters can account for deliveries that will never happen.
  size_t close();

  /// Removes every still-queued task for \p Symbol (the method task and any
  /// OSR tasks) and returns them — the cooperative-cancellation fast path
  /// for work no worker has picked up yet. Sequence numbers stay consumed
  /// (enqueuedCount is monotone), so the caller must account the removals
  /// as dropped toward any drain target.
  std::vector<CompileTask> cancel(std::string_view Symbol);

  size_t size() const;
  bool closed() const;

  /// Total tasks ever accepted (== the next SequenceNo).
  uint64_t enqueuedCount() const;

private:
  const size_t Capacity;
  const PopOrder Order;

  mutable std::mutex Lock;
  std::condition_variable TaskReady;
  std::vector<CompileTask> Tasks; ///< Unordered; pop scans by policy.
  std::set<std::string> Queued;   ///< Symbols currently in Tasks.
  uint64_t NextSequenceNo = 0;
  bool Closed = false;
};

} // namespace incline::jit

#endif // INCLINE_JIT_COMPILEQUEUE_H
