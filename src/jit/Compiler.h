//===- jit/Compiler.h - Compiler interface for the JIT runtime ------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second-tier compiler abstraction. The JIT runtime invokes it when a
/// method gets hot; implementations (in src/inliner) differ only in their
/// inlining algorithm — exactly the paper's experimental setup, where "the
/// only component that we replaced was the inliner" (§V).
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_JIT_COMPILER_H
#define INCLINE_JIT_COMPILER_H

#include "opt/Pass.h"

#include <cstdint>
#include <memory>
#include <string>

namespace incline::ir {
class Function;
class Module;
} // namespace incline::ir

namespace incline::profile {
class ProfileTable;
}

namespace incline::jit {

/// Per-compilation statistics reported by a compiler.
struct CompileStats {
  uint64_t InlinedCallsites = 0;
  uint64_t Rounds = 0;          ///< Inliner rounds (expand/analyze/inline).
  uint64_t ExploredNodes = 0;   ///< Call-tree nodes ever created.
  uint64_t OptsTriggered = 0;   ///< Canonicalizer rewrites observed.
  uint64_t GuardsEmitted = 0;   ///< Speculative-devirtualization guards.
  uint64_t BranchesPruned = 0;  ///< Cold edges replaced with uncommon traps.
  uint64_t CodeSize = 0;        ///< |ir| of the final compiled body.
  uint64_t PassRuns = 0;        ///< Individual pass executions.
  uint64_t PassNanos = 0;       ///< Wall time spent inside passes.
  uint64_t AnalysisCacheHits = 0;   ///< Cached-analysis reuses.
  uint64_t AnalysisCacheMisses = 0; ///< Analyses computed from scratch.
  uint64_t TrialCacheHits = 0;   ///< Deep-trial results served from cache.
  uint64_t TrialCacheMisses = 0; ///< Deep trials computed from scratch.
  uint64_t TrialNanos = 0;       ///< Wall time in the deep-trial bundle.
  uint64_t TrialNanosSaved = 0;  ///< Trial wall time skipped via the cache.
};

/// Aggregate counters of a compile-result cache (see compileCache()).
struct CompileCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;          ///< Entries dropped by the LRU bound.
  uint64_t EpochInvalidations = 0; ///< Full clears from runtime events.
  uint64_t SavedNanos = 0;         ///< Trial wall time skipped on hits.
};

/// A cache of memoized compilation work (e.g. the inliner's deep-trial
/// results) that must not survive events which change what the runtime
/// knows about the program. The JIT runtime notifies it on such events:
/// code invalidation after a failed speculation (the code epoch bumps) and
/// speculation-blacklist growth. Implementations must be thread-safe —
/// compile workers hit the cache concurrently with runtime events.
class CompileCache {
public:
  virtual ~CompileCache();

  /// Drops every entry whose validity the runtime event could have
  /// affected. Called by JitRuntime on deopt-driven invalidation and on
  /// speculation-blacklist updates.
  virtual void invalidateForRuntimeEvent() = 0;

  /// Snapshot of the lifetime counters.
  virtual CompileCacheStats cacheStats() const = 0;
};

/// A second-tier compiler: consumes the profiled source IR of one method
/// and produces optimized code.
class Compiler {
public:
  virtual ~Compiler();

  /// Compiles \p Source (a method of \p M) using \p Profiles under the
  /// pass-execution context \p Ctx. The returned function keeps the
  /// source's name (profile keys stay valid).
  ///
  /// This entry point is what makes compilers shareable across compile
  /// worker threads: the compiler object itself holds no mutable
  /// per-compilation state, and every piece of pass/analysis scaffolding
  /// (analysis cache, observer, metrics sink) arrives through \p Ctx, which
  /// each worker owns privately. Implementations must not mutate `this`.
  virtual std::unique_ptr<ir::Function>
  compile(const ir::Function &Source, const ir::Module &M,
          const profile::ProfileTable &Profiles, CompileStats &Stats,
          const opt::PassContext &Ctx) = 0;

  /// Single-threaded convenience: compiles under the installed context
  /// (see setPassContext).
  std::unique_ptr<ir::Function>
  compile(const ir::Function &Source, const ir::Module &M,
          const profile::ProfileTable &Profiles, CompileStats &Stats) {
    return compile(Source, M, Profiles, Stats, PassCtx);
  }

  /// Short name for reports ("incremental", "greedy", "c2", ...).
  virtual std::string name() const = 0;

  /// The compiler's memoization cache, if it keeps one (null otherwise).
  /// The JIT runtime uses this to deliver invalidation events without the
  /// jit layer depending on any concrete compiler implementation.
  virtual CompileCache *compileCache() { return nullptr; }

  /// Installs hooks the compiler threads through every pass it runs: the
  /// observer fires after each individual pass on the function it just
  /// transformed (the fuzz oracle verifies IR there), and the
  /// instrumentation sink receives per-pass metrics. Compilers create
  /// their own per-compilation AnalysisManager; Ctx.AM, when set, is used
  /// as-is instead. Not thread-safe: install before handing the compiler
  /// to a JitRuntime, never while compilations are in flight.
  void setPassContext(const opt::PassContext &Ctx) { PassCtx = Ctx; }
  const opt::PassContext &passContext() const { return PassCtx; }

protected:
  opt::PassContext PassCtx;
};

} // namespace incline::jit

#endif // INCLINE_JIT_COMPILER_H
