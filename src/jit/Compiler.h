//===- jit/Compiler.h - Compiler interface for the JIT runtime ------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second-tier compiler abstraction. The JIT runtime invokes it when a
/// method gets hot; implementations (in src/inliner) differ only in their
/// inlining algorithm — exactly the paper's experimental setup, where "the
/// only component that we replaced was the inliner" (§V).
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_JIT_COMPILER_H
#define INCLINE_JIT_COMPILER_H

#include <cstdint>
#include <memory>
#include <string>

namespace incline::ir {
class Function;
class Module;
} // namespace incline::ir

namespace incline::profile {
class ProfileTable;
}

namespace incline::jit {

/// Per-compilation statistics reported by a compiler.
struct CompileStats {
  uint64_t InlinedCallsites = 0;
  uint64_t Rounds = 0;          ///< Inliner rounds (expand/analyze/inline).
  uint64_t ExploredNodes = 0;   ///< Call-tree nodes ever created.
  uint64_t OptsTriggered = 0;   ///< Canonicalizer rewrites observed.
  uint64_t CodeSize = 0;        ///< |ir| of the final compiled body.
};

/// A second-tier compiler: consumes the profiled source IR of one method
/// and produces optimized code.
class Compiler {
public:
  virtual ~Compiler();

  /// Compiles \p Source (a method of \p M) using \p Profiles. The returned
  /// function keeps the source's name (profile keys stay valid).
  virtual std::unique_ptr<ir::Function>
  compile(const ir::Function &Source, const ir::Module &M,
          const profile::ProfileTable &Profiles, CompileStats &Stats) = 0;

  /// Short name for reports ("incremental", "greedy", "c2", ...).
  virtual std::string name() const = 0;
};

} // namespace incline::jit

#endif // INCLINE_JIT_COMPILER_H
