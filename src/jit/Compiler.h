//===- jit/Compiler.h - Compiler interface for the JIT runtime ------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second-tier compiler abstraction. The JIT runtime invokes it when a
/// method gets hot; implementations (in src/inliner) differ only in their
/// inlining algorithm — exactly the paper's experimental setup, where "the
/// only component that we replaced was the inliner" (§V).
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_JIT_COMPILER_H
#define INCLINE_JIT_COMPILER_H

#include "opt/Pass.h"

#include <cstdint>
#include <memory>
#include <string>

namespace incline::ir {
class Function;
class Module;
} // namespace incline::ir

namespace incline::profile {
class ProfileTable;
}

namespace incline::jit {

/// Per-compilation statistics reported by a compiler.
struct CompileStats {
  uint64_t InlinedCallsites = 0;
  uint64_t Rounds = 0;          ///< Inliner rounds (expand/analyze/inline).
  uint64_t ExploredNodes = 0;   ///< Call-tree nodes ever created.
  uint64_t OptsTriggered = 0;   ///< Canonicalizer rewrites observed.
  uint64_t GuardsEmitted = 0;   ///< Speculative-devirtualization guards.
  uint64_t CodeSize = 0;        ///< |ir| of the final compiled body.
  uint64_t PassRuns = 0;        ///< Individual pass executions.
  uint64_t PassNanos = 0;       ///< Wall time spent inside passes.
  uint64_t AnalysisCacheHits = 0;   ///< Cached-analysis reuses.
  uint64_t AnalysisCacheMisses = 0; ///< Analyses computed from scratch.
};

/// A second-tier compiler: consumes the profiled source IR of one method
/// and produces optimized code.
class Compiler {
public:
  virtual ~Compiler();

  /// Compiles \p Source (a method of \p M) using \p Profiles under the
  /// pass-execution context \p Ctx. The returned function keeps the
  /// source's name (profile keys stay valid).
  ///
  /// This entry point is what makes compilers shareable across compile
  /// worker threads: the compiler object itself holds no mutable
  /// per-compilation state, and every piece of pass/analysis scaffolding
  /// (analysis cache, observer, metrics sink) arrives through \p Ctx, which
  /// each worker owns privately. Implementations must not mutate `this`.
  virtual std::unique_ptr<ir::Function>
  compile(const ir::Function &Source, const ir::Module &M,
          const profile::ProfileTable &Profiles, CompileStats &Stats,
          const opt::PassContext &Ctx) = 0;

  /// Single-threaded convenience: compiles under the installed context
  /// (see setPassContext).
  std::unique_ptr<ir::Function>
  compile(const ir::Function &Source, const ir::Module &M,
          const profile::ProfileTable &Profiles, CompileStats &Stats) {
    return compile(Source, M, Profiles, Stats, PassCtx);
  }

  /// Short name for reports ("incremental", "greedy", "c2", ...).
  virtual std::string name() const = 0;

  /// Installs hooks the compiler threads through every pass it runs: the
  /// observer fires after each individual pass on the function it just
  /// transformed (the fuzz oracle verifies IR there), and the
  /// instrumentation sink receives per-pass metrics. Compilers create
  /// their own per-compilation AnalysisManager; Ctx.AM, when set, is used
  /// as-is instead. Not thread-safe: install before handing the compiler
  /// to a JitRuntime, never while compilations are in flight.
  void setPassContext(const opt::PassContext &Ctx) { PassCtx = Ctx; }
  const opt::PassContext &passContext() const { return PassCtx; }

protected:
  opt::PassContext PassCtx;
};

} // namespace incline::jit

#endif // INCLINE_JIT_COMPILER_H
