//===- jit/CompileQueue.cpp ---------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "jit/CompileQueue.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace incline;
using namespace incline::jit;

std::string CompileTask::dedupKey() const {
  if (TaskKind == Kind::Method)
    return Symbol;
  return formatString("%s@osr%u", Symbol.c_str(), OsrHeaderBlockId);
}

CompileQueue::Outcome CompileQueue::tryEnqueue(CompileTask Task) {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    if (Closed || Tasks.size() >= Capacity)
      return Outcome::Full;
    if (!Queued.insert(Task.dedupKey()).second)
      return Outcome::Duplicate;
    Task.SequenceNo = NextSequenceNo++;
    Tasks.push_back(std::move(Task));
  }
  TaskReady.notify_one();
  return Outcome::Enqueued;
}

std::optional<CompileTask> CompileQueue::pop() {
  std::unique_lock<std::mutex> Guard(Lock);
  TaskReady.wait(Guard, [&] { return Closed || !Tasks.empty(); });
  if (Tasks.empty())
    return std::nullopt; // Closed.

  auto Best = Tasks.begin();
  if (Order == PopOrder::Priority) {
    for (auto It = std::next(Tasks.begin()); It != Tasks.end(); ++It)
      if (It->Hotness > Best->Hotness ||
          (It->Hotness == Best->Hotness && It->SequenceNo < Best->SequenceNo))
        Best = It;
  } else {
    for (auto It = std::next(Tasks.begin()); It != Tasks.end(); ++It)
      if (It->SequenceNo < Best->SequenceNo)
        Best = It;
  }
  CompileTask Task = std::move(*Best);
  Tasks.erase(Best);
  Queued.erase(Task.dedupKey());
  return Task;
}

std::vector<CompileTask> CompileQueue::cancel(std::string_view Symbol) {
  std::vector<CompileTask> Removed;
  std::lock_guard<std::mutex> Guard(Lock);
  for (auto It = Tasks.begin(); It != Tasks.end();) {
    if (It->Symbol == Symbol) {
      Queued.erase(It->dedupKey());
      Removed.push_back(std::move(*It));
      It = Tasks.erase(It);
    } else {
      ++It;
    }
  }
  return Removed;
}

size_t CompileQueue::close() {
  size_t DroppedTasks;
  {
    std::lock_guard<std::mutex> Guard(Lock);
    Closed = true;
    DroppedTasks = Tasks.size();
    Tasks.clear();
    Queued.clear();
  }
  TaskReady.notify_all();
  return DroppedTasks;
}

size_t CompileQueue::size() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Tasks.size();
}

bool CompileQueue::closed() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Closed;
}

uint64_t CompileQueue::enqueuedCount() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return NextSequenceNo;
}
