//===- jit/CompileWorkerPool.h - Background compile threads ----------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// N threads draining the CompileQueue, the way HotSpot/Graal compiler
/// threads drain the VM's compile request queue while the application keeps
/// running. The threading contract:
///
///  * Workers share the (stateless) `jit::Compiler` and the read-only
///    `ir::Module`; they never touch the code cache, the live profile
///    table, or any interpreter state.
///  * Each task is compiled under a worker-private `opt::PassContext`
///    carrying a fresh `opt::AnalysisManager` wired to the task's profile
///    snapshot — pass and analysis state is never shared across threads,
///    and cache hit/miss counts match what a synchronous compile of the
///    same snapshot would produce.
///  * Finished work (installed-ready code or a bailout) is delivered to a
///    mutex-protected completed list; only the mutator consumes it, at
///    safepoints, which is the single publish point into the code cache.
///
/// A compiler exception on a worker is converted into a bailout outcome
/// (`Exception = true`) instead of tearing down the process: background
/// compilation failure must leave the method interpreted, nothing more.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_JIT_COMPILEWORKERPOOL_H
#define INCLINE_JIT_COMPILEWORKERPOOL_H

#include "jit/CompileQueue.h"
#include "jit/Compiler.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace incline::ir {
class Function;
class Module;
} // namespace incline::ir

namespace incline::jit {

/// The result of one background compile task, ready for the mutator to
/// publish (or account as a bailout).
struct CompileOutcome {
  CompileTask Task;
  /// Compiled code; null when the compiler bailed out (or threw).
  std::unique_ptr<ir::Function> Code;
  CompileStats Stats;
  /// Bailout detail; empty for a plain compiler-declined bailout.
  std::string Error;
  /// True when the compiler threw instead of returning.
  bool Exception = false;
};

/// Fixed-size pool of compile worker threads.
class CompileWorkerPool {
public:
  /// Spawns \p NumThreads workers (clamped to >= 1) draining \p Queue.
  CompileWorkerPool(CompileQueue &Queue, Compiler &TheCompiler,
                    const ir::Module &M, unsigned NumThreads);
  ~CompileWorkerPool();

  CompileWorkerPool(const CompileWorkerPool &) = delete;
  CompileWorkerPool &operator=(const CompileWorkerPool &) = delete;

  /// Closes the queue (dropping still-pending tasks) and joins every
  /// worker. Idempotent.
  void shutdown();

  /// Non-blocking: moves out everything completed so far, ordered by
  /// enqueue sequence within the batch. Mutator-only.
  std::vector<CompileOutcome> takeCompleted();

  /// Blocks until every task ever accepted by the queue has been delivered
  /// (or dropped by a close), then returns the completed batch (ordered by
  /// enqueue sequence). Mutator-only, and only valid while the mutator is
  /// not enqueueing concurrently — which is given, since the mutator is the
  /// sole producer.
  std::vector<CompileOutcome> waitUntilDrained();

  /// Total outcomes ever delivered. Lock-free; the mutator polls this at
  /// safepoints to skip taking the completed-list lock when nothing new
  /// finished.
  uint64_t deliveredCount() const {
    return Delivered.load(std::memory_order_acquire);
  }

  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

private:
  void workerLoop();
  void deliver(CompileOutcome Outcome);

  CompileQueue &Queue;
  Compiler &TheCompiler;
  const ir::Module &M;

  std::vector<std::thread> Workers;
  std::mutex CompletedLock;
  std::condition_variable CompletedSignal;
  std::vector<CompileOutcome> Completed;
  std::atomic<uint64_t> Delivered{0};
  /// Tasks the queue dropped at close() without delivery; counted toward
  /// waitUntilDrained's target so the wait stays satisfiable after (or
  /// concurrently with) shutdown.
  std::atomic<uint64_t> Dropped{0};
  bool ShutDown = false;
};

} // namespace incline::jit

#endif // INCLINE_JIT_COMPILEWORKERPOOL_H
