//===- jit/CompileWorkerPool.h - Background compile threads ----------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// N threads draining the CompileQueue, the way HotSpot/Graal compiler
/// threads drain the VM's compile request queue while the application keeps
/// running. The threading contract:
///
///  * Workers share the (stateless) `jit::Compiler` and the read-only
///    `ir::Module`; they never touch the code cache, the live profile
///    table, or any interpreter state.
///  * Each task is compiled under a worker-private `opt::PassContext`
///    carrying a fresh `opt::AnalysisManager` wired to the task's profile
///    snapshot — pass and analysis state is never shared across threads,
///    and cache hit/miss counts match what a synchronous compile of the
///    same snapshot would produce.
///  * Finished work (installed-ready code or a bailout) is delivered to a
///    mutex-protected completed list; only the mutator consumes it, at
///    safepoints, which is the single publish point into the code cache.
///
/// A compiler exception on a worker is converted into a bailout outcome
/// (`Exception = true`) instead of tearing down the process: background
/// compilation failure must leave the method interpreted, nothing more.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_JIT_COMPILEWORKERPOOL_H
#define INCLINE_JIT_COMPILEWORKERPOOL_H

#include "jit/CompileQueue.h"
#include "jit/Compiler.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace incline::ir {
class Function;
class Module;
} // namespace incline::ir

namespace incline::jit {

/// The result of one background compile task, ready for the mutator to
/// publish (or account as a bailout).
struct CompileOutcome {
  /// What kind of failure a thrown compile was — the supervisor's ladder
  /// treats these differently from compiler bugs (DESIGN.md §14).
  enum class BailoutClass : uint8_t {
    None,     ///< Success, plain bailout, or a genuine compiler exception.
    Deadline, ///< support::DeadlineExceeded — budget/deadline tripped.
    Resource  ///< support::ResourceExhausted or std::bad_alloc.
  };

  CompileTask Task;
  /// Compiled code; null when the compiler bailed out (or threw).
  std::unique_ptr<ir::Function> Code;
  CompileStats Stats;
  /// Bailout detail; empty for a plain compiler-declined bailout.
  std::string Error;
  /// True when the compiler threw instead of returning.
  bool Exception = false;
  BailoutClass Class = BailoutClass::None;
  /// True when the task's token had a cancel request by the time the worker
  /// finished: the result (even a successful one) is for retired work and
  /// must be discarded neutrally, not counted as a failure.
  bool Cancelled = false;
};

/// Fixed-size pool of compile worker threads.
class CompileWorkerPool {
public:
  /// Spawns \p NumThreads workers (clamped to >= 1) draining \p Queue.
  CompileWorkerPool(CompileQueue &Queue, Compiler &TheCompiler,
                    const ir::Module &M, unsigned NumThreads);
  ~CompileWorkerPool();

  CompileWorkerPool(const CompileWorkerPool &) = delete;
  CompileWorkerPool &operator=(const CompileWorkerPool &) = delete;

  /// Closes the queue (dropping still-pending tasks), requests cancel on
  /// every in-flight task's token so workers abandon at their next
  /// checkpoint, and joins every worker. Idempotent.
  void shutdown();

  /// Cooperative cancellation of all of \p Symbol's work: still-queued
  /// tasks are removed (accounted as dropped so drain targets stay
  /// reachable) and returned to the caller; tasks a worker is actively
  /// compiling get a cancel request on their token and surface later as a
  /// `Cancelled` outcome. Called by the mutator when deopt invalidates or
  /// the code cache evicts the symbol.
  std::vector<CompileTask> cancelTasksFor(std::string_view Symbol);

  /// Non-blocking: moves out everything completed so far, ordered by
  /// enqueue sequence within the batch. Mutator-only.
  std::vector<CompileOutcome> takeCompleted();

  /// Blocks until every task ever accepted by the queue has been delivered
  /// (or dropped by a close), then returns the completed batch (ordered by
  /// enqueue sequence). Mutator-only, and only valid while the mutator is
  /// not enqueueing concurrently — which is given, since the mutator is the
  /// sole producer.
  std::vector<CompileOutcome> waitUntilDrained();

  /// Total outcomes ever delivered. Lock-free; the mutator polls this at
  /// safepoints to skip taking the completed-list lock when nothing new
  /// finished.
  uint64_t deliveredCount() const {
    return Delivered.load(std::memory_order_acquire);
  }

  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

private:
  void workerLoop();
  void deliver(CompileOutcome Outcome);

  CompileQueue &Queue;
  Compiler &TheCompiler;
  const ir::Module &M;

  /// Tokens of tasks currently being compiled, keyed by symbol, so the
  /// mutator can cancel work already popped from the queue. Multimap:
  /// a method task and OSR tasks of one symbol may run concurrently.
  std::mutex ActiveLock;
  std::multimap<std::string, std::shared_ptr<support::CancellationToken>,
                std::less<>>
      Active;

  std::vector<std::thread> Workers;
  std::mutex CompletedLock;
  std::condition_variable CompletedSignal;
  std::vector<CompileOutcome> Completed;
  std::atomic<uint64_t> Delivered{0};
  /// Tasks the queue dropped at close() without delivery; counted toward
  /// waitUntilDrained's target so the wait stays satisfiable after (or
  /// concurrently with) shutdown.
  std::atomic<uint64_t> Dropped{0};
  bool ShutDown = false;
};

} // namespace incline::jit

#endif // INCLINE_JIT_COMPILEWORKERPOOL_H
