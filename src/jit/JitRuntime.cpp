//===- jit/JitRuntime.cpp -----------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "jit/JitRuntime.h"

#include "interp/CostModel.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "jit/CompileQueue.h"
#include "jit/CompileWorkerPool.h"
#include "opt/ModuleReachability.h"
#include "support/ErrorHandling.h"
#include "support/StringUtils.h"

#include <chrono>
#include <exception>

using namespace incline;
using namespace incline::jit;

Compiler::~Compiler() = default;
CompileCache::~CompileCache() = default;

std::string_view incline::jit::jitModeName(JitMode Mode) {
  switch (Mode) {
  case JitMode::Sync: return "sync";
  case JitMode::Async: return "async";
  case JitMode::Deterministic: return "deterministic";
  }
  return "unknown";
}

namespace {

/// RAII latch for the reentrancy guard: unlatches even when the compiler
/// throws, so one failed compilation cannot silently disable the JIT for
/// the rest of the run.
class CompileInProgressGuard {
public:
  explicit CompileInProgressGuard(bool &Flag) : Flag(Flag) { Flag = true; }
  ~CompileInProgressGuard() { Flag = false; }
  CompileInProgressGuard(const CompileInProgressGuard &) = delete;
  CompileInProgressGuard &operator=(const CompileInProgressGuard &) = delete;

private:
  bool &Flag;
};

/// Accumulates wall time into a mutator-stall counter.
class StallTimer {
public:
  explicit StallTimer(uint64_t &Sink)
      : Sink(Sink), Start(std::chrono::steady_clock::now()) {}
  ~StallTimer() {
    Sink += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  }

private:
  uint64_t &Sink;
  std::chrono::steady_clock::time_point Start;
};

uint64_t fnv1a(std::string_view Data) {
  uint64_t Hash = 1469598103934665603ull;
  for (unsigned char C : Data) {
    Hash ^= C;
    Hash *= 1099511628211ull;
  }
  return Hash;
}

} // namespace

std::string
incline::jit::streamFingerprint(const std::vector<CompilationRecord> &Stream) {
  std::string Out;
  for (const CompilationRecord &R : Stream) {
    Out += formatString(
        "#%llu %s attempt=%u size=%llu inlined=%llu rounds=%llu "
        "explored=%llu opts=%llu guards=%llu passes=%llu hits=%llu "
        "misses=%llu ir=%016llx",
        static_cast<unsigned long long>(R.CompileIndex), R.Symbol.c_str(),
        R.Attempt, static_cast<unsigned long long>(R.Stats.CodeSize),
        static_cast<unsigned long long>(R.Stats.InlinedCallsites),
        static_cast<unsigned long long>(R.Stats.Rounds),
        static_cast<unsigned long long>(R.Stats.ExploredNodes),
        static_cast<unsigned long long>(R.Stats.OptsTriggered),
        static_cast<unsigned long long>(R.Stats.GuardsEmitted),
        static_cast<unsigned long long>(R.Stats.PassRuns),
        static_cast<unsigned long long>(R.Stats.AnalysisCacheHits),
        static_cast<unsigned long long>(R.Stats.AnalysisCacheMisses),
        static_cast<unsigned long long>(R.IRFingerprint));
    // Ladder rung, only when degraded: rung-0 records keep the exact
    // pre-ladder byte layout, so fingerprints of unsupervised runs stay
    // comparable across the feature boundary.
    if (R.Rung != 0)
      Out += formatString(" rung=%u", R.Rung);
    // Same contract for cold-branch pruning: the field appears only when a
    // trap was actually planted, so `--cold-prune=off` streams stay
    // byte-identical to pre-feature ones.
    if (R.Stats.BranchesPruned != 0)
      Out += formatString(
          " pruned=%llu", static_cast<unsigned long long>(R.Stats.BranchesPruned));
    Out += '\n';
  }
  return Out;
}

JitRuntime::JitRuntime(ir::Module &M, Compiler &TheCompiler, JitConfig Config)
    : M(M), TheCompiler(TheCompiler), Config(std::move(Config)),
      Code(this->Config.CodeCacheBudget) {
  if (this->Config.Enabled && this->Config.Mode != JitMode::Sync) {
    CompileQueue::PopOrder Order = this->Config.Mode == JitMode::Deterministic
                                       ? CompileQueue::PopOrder::Fifo
                                       : CompileQueue::PopOrder::Priority;
    Queue = std::make_unique<CompileQueue>(this->Config.QueueCapacity, Order);
    Pool = std::make_unique<CompileWorkerPool>(*Queue, TheCompiler, M,
                                               this->Config.Threads);
  }
}

JitRuntime::~JitRuntime() {
  if (Pool)
    Pool->shutdown();
}

JitRuntimeStats JitRuntime::stats() const {
  // The code-lifecycle counters are owned by the code cache (counted once,
  // at the retire/install point); merge them into the snapshot so existing
  // readers keep one coherent struct.
  JitRuntimeStats S = Stats;
  const CodeCacheStats &C = Code.stats();
  S.Invalidations = C.Invalidations;
  S.OsrInvalidations = C.OsrInvalidations;
  S.OsrInstalls = C.OsrInstalls;
  return S;
}

interp::ResolvedBody JitRuntime::resolve(std::string_view Symbol) {
  interp::ResolvedBody Body;
  Body.ProfileName = std::string(Symbol);
  if (const ir::Function *Compiled = Code.lookupMethod(Symbol)) {
    Body.F = Compiled;
    Body.Compiled = true;
    return Body;
  }
  Body.F = M.function(Symbol);
  Body.Compiled = false;
  // Interpreted tier: mark loop-bearing bodies OSR-eligible so the
  // interpreter reports their taken backedges. The plan is computed once
  // per method (the module is immutable at runtime) and an empty plan
  // keeps the flag off — the dispatch loop pays nothing for loop-free
  // methods.
  if (Body.F && Config.Enabled && Config.Osr)
    Body.OsrEligible = !osrPlanFor(Symbol).empty();
  return Body;
}

const opt::OsrPlan &JitRuntime::osrPlanFor(std::string_view Symbol) {
  auto It = OsrPlans.find(Symbol);
  if (It != OsrPlans.end())
    return It->second;
  opt::OsrPlan Plan;
  if (const ir::Function *F = M.function(Symbol))
    Plan = opt::computeOsrPlan(*F);
  return OsrPlans.emplace(std::string(Symbol), std::move(Plan)).first->second;
}

JitRuntime::MethodState &JitRuntime::stateOf(std::string_view Symbol) {
  auto It = Methods.find(Symbol);
  if (It == Methods.end()) {
    It = Methods.emplace(std::string(Symbol), MethodState()).first;
    It->second.NextAttemptAt = Config.CompileThreshold;
  }
  return It->second;
}

void JitRuntime::onInvoke(std::string_view Symbol) {
  if (!Config.Enabled)
    return;
  MethodState &State = stateOf(Symbol);
  if (State.Compiled) {
    // Chaos hook: a forced eviction at an invocation boundary exercises the
    // evict -> reheat -> recompile round trip. When the symbol is pinned
    // (a compile of it is in flight) the evict is a no-op and the method
    // stays compiled.
    if (Config.ForceEvict && Config.ForceEvict(Symbol))
      evictNow(Symbol);
    if (State.Compiled) {
      // Degraded-rung installs keep counting: a stable lower-rung method
      // earns a retry one rung up after re-heating (no-op at rung 0, so the
      // fully-compiled fast path is unchanged).
      if (State.Rung != 0)
        maybeRequestUpgrade(Symbol, State);
      return; // Fast path: hotness stops once compiled (at full rung).
    }
  }
  ++State.Hotness;
  if (State.InFlight || State.DoNotCompile)
    return;
  if (State.Hotness < State.NextAttemptAt)
    return; // Fast path: not yet hot (or backing off after a bailout).
  // Guard against reentrant compilation (the compiler itself never runs
  // MiniOO code, but be defensive).
  if (CompilationInProgress)
    return;
  requestCompile(Symbol, State);
}

void JitRuntime::onSafepoint() {
  // Profile decay first: a tick is mutator-driven state, identical across
  // Sync and Deterministic modes (the interpreter reaches safepoints in
  // the same order), so decay alone never perturbs the bit-identity
  // contract between them.
  if (Config.ProfileDecayHalflife != 0 &&
      ++SafepointsSinceDecay >= Config.ProfileDecayHalflife) {
    SafepointsSinceDecay = 0;
    applyProfileDecay();
  }
  if (Config.Mode != JitMode::Async || !Pool)
    return;
  // One relaxed atomic load when nothing finished — the safepoint poll is
  // on the interpreter's block-transition path.
  if (Pool->deliveredCount() == ConsumedOutcomes)
    return;
  StallTimer Stall(Stats.MutatorStallNanos);
  publishBatch(Pool->takeCompleted());
}

void JitRuntime::applyProfileDecay() {
  Profiles.decay();
  // Uncompiled hotness decays with the profiles it mirrors: a method that
  // stopped being hot must earn its compile again. Compiled and in-flight
  // anchors keep their counters — their trigger already fired.
  for (auto &[Symbol, State] : Methods)
    if (!State.Compiled && !State.InFlight)
      State.Hotness >>= 1;
  Code.decayHeat();
  // Decayed profiles change every speculation input; memoized trial work
  // keyed on the old counts must not be replayed (the TrialCache keys on a
  // profile fingerprint too — this flush is the contract-level guarantee,
  // via the same interface a deopt blacklist change uses).
  if (CompileCache *Cache = TheCompiler.compileCache())
    Cache->invalidateForRuntimeEvent();
}

std::shared_ptr<support::CancellationToken>
JitRuntime::makeCompileToken(std::string_view Symbol, TierState &State) {
  unsigned Attempt = State.AttemptNo++;
  bool Forced = Config.ForceDeadlineExpiry &&
                Config.ForceDeadlineExpiry(Symbol, Attempt);
  bool Supervised = Config.CompileDeadlineUnits != 0 ||
                    Config.CompileDeadlineMs != 0 ||
                    Config.CompileNodeQuota != 0 || Forced;
  // Background compiles always carry a token — it is the cancellation
  // channel for deopt/evict/shutdown — while unsupervised sync compiles
  // (mutator-inline, nothing can cancel them) skip it entirely, keeping
  // the legacy path token-free.
  if (!Supervised && (Config.Mode == JitMode::Sync || !Queue))
    return nullptr;
  support::CancellationToken::Budgets B;
  B.WorkUnits = Config.CompileDeadlineUnits;
  B.WallMillis = Config.CompileDeadlineMs;
  B.NodeQuota = Config.CompileNodeQuota;
  // Forced expiry: a 1-unit budget is spent by the first pass run, so the
  // compile deterministically dies at its second checkpoint — same point
  // in every execution mode.
  if (Forced)
    B.WorkUnits = 1;
  return std::make_shared<support::CancellationToken>(B);
}

void JitRuntime::maybeRequestUpgrade(std::string_view Symbol,
                                     MethodState &State) {
  if (!Config.DegradeLadder || State.Rung == 0 ||
      State.Rung >= RungInterpreterOnly)
    return;
  if (State.InFlight || State.DoNotCompile || CompilationInProgress)
    return;
  ++State.Hotness;
  if (State.Hotness < State.NextAttemptAt)
    return; // Not re-heated enough yet.
  ++Stats.LadderUpgradeAttempts;
  requestCompile(Symbol, State, static_cast<int>(State.Rung) - 1);
}

std::shared_ptr<const opt::ModuleReachability>
JitRuntime::ensureReachability() {
  if (!Config.TreeShake)
    return nullptr;
  if (!Reachability) {
    // Computed exactly once, at the first compile request: the module is
    // immutable at runtime, so the CHA skeleton never changes, and the
    // profile assist only *adds* live classes the static analysis already
    // had to assume conservatively — later profiles cannot invalidate the
    // set. First-request timing is also mode-independent (Sync and
    // Deterministic reach it at the same threshold crossing with the same
    // profiles), preserving the bit-identity contract.
    std::vector<std::string> Roots = Config.TreeShakeRoots;
    if (Roots.empty())
      Roots.emplace_back("main");
    Reachability = std::make_shared<const opt::ModuleReachability>(
        opt::ModuleReachability::compute(M, Roots, &Profiles));
    Stats.MethodsShaken = Reachability->numShaken();
  }
  return Reachability;
}

void JitRuntime::requestCompile(std::string_view Symbol, MethodState &State,
                                int UpgradeToRung) {
  // Tree shaking: a method the analysis proved dead cannot legitimately be
  // hot — if it runs anyway the configured roots were understated, and the
  // safe answer is the interpreter. Skip the whole pipeline and stop
  // asking, without a blacklist strike (this is a resource decision, not a
  // compile failure).
  if (std::shared_ptr<const opt::ModuleReachability> R = ensureReachability())
    if (!R->isReachable(Symbol)) {
      ++Stats.ShakenCompileSkips;
      State.DoNotCompile = true;
      return;
    }
  const bool Upgrade = UpgradeToRung >= 0;
  const unsigned Rung =
      Upgrade ? static_cast<unsigned>(UpgradeToRung) : State.Rung;
  if (Config.Mode == JitMode::Sync || !Queue) {
    ++Stats.CompileRequests;
    CompileTask Task;
    Task.Symbol = std::string(Symbol);
    Task.Rung = Rung;
    Task.Upgrade = Upgrade;
    Task.Cancel = makeCompileToken(Symbol, State);
    compileOnMutator(Task);
    return;
  }

  CompileTask Task;
  Task.Symbol = std::string(Symbol);
  Task.Hotness = State.Hotness;
  Task.Rung = Rung;
  Task.Upgrade = Upgrade;
  Task.Cancel = makeCompileToken(Symbol, State);
  // Snapshot the live profiles (and both blacklists): the worker sees
  // exactly the state a synchronous compile at this threshold crossing
  // would have seen — the deterministic-mode bit-identity guarantee
  // extends to speculation and pruning decisions.
  Task.ProfilesSnapshot = Profiles;
  Task.BlacklistSnapshot = Blacklist;
  Task.PruneBlacklistSnapshot = PruneBlacklist;
  Task.ForceColdBranch = Config.ForceColdBranch;
  Task.Reachable = ensureReachability();

  CompileQueue::Outcome Enq = Queue->tryEnqueue(std::move(Task));
  if (Enq != CompileQueue::Outcome::Enqueued) {
    // Backpressure: stay interpreted and retry once the method has warmed
    // further, instead of re-snapshotting profiles every invocation.
    if (Enq == CompileQueue::Outcome::Full)
      ++Stats.QueueFullRejections;
    State.NextAttemptAt = State.Hotness + 1 + Config.CompileThreshold / 4;
    return;
  }
  ++Stats.CompileRequests;
  State.InFlight = true;
  // Pinned while in flight: the symbol's installed entries (if any) cannot
  // be budget-eviction victims until the outcome publishes.
  Code.pin(Symbol);

  if (Config.Mode == JitMode::Deterministic) {
    // The enqueue is the safepoint: block until the worker finishes and
    // install in enqueue order, exactly where Sync mode would have
    // compiled.
    StallTimer Stall(Stats.MutatorStallNanos);
    publishBatch(Pool->waitUntilDrained());
  }
}

const ir::Function *JitRuntime::onOsrEdge(std::string_view Method,
                                          const ir::BasicBlock &From,
                                          const ir::BasicBlock &To) {
  if (!Config.Enabled || !Config.Osr)
    return nullptr;
  const opt::OsrPlan &Plan = osrPlanFor(Method);
  unsigned Header = Plan.headerForEdge(From.id(), To.id());
  if (Header == opt::OsrPlan::NoHeader)
    return nullptr;
  // Backedge profiling lives in the ordinary profile table: snapshots taken
  // at enqueue time carry it to workers like every other profile. The
  // counter's address is memoized for the (method, header) pair polled last
  // — loops re-poll the same pair on every iteration — and revalidated
  // against the decay epoch (decay erases zeroed entries; eviction only
  // zeroes counters in place, so the pointer survives it).
  if (!OsrMemoCount || OsrMemoHeader != Header ||
      OsrMemoEpoch != Profiles.decayEpoch() || OsrMemoMethod != Method) {
    OsrMemoMethod = std::string(Method);
    OsrMemoHeader = Header;
    OsrMemoEpoch = Profiles.decayEpoch();
    OsrMemoCount = &Profiles.methodProfile(Method).Backedges[Header];
  }
  uint64_t Count = ++*OsrMemoCount;

  OsrState &State = OsrStates[{std::string(Method), Header}];
  if (!State.Compiled && !State.InFlight && !State.DoNotCompile &&
      !CompilationInProgress) {
    uint64_t Threshold = State.NextAttemptAt != 0 ? State.NextAttemptAt
                                                  : Config.OsrBackedgeThreshold;
    bool Forced =
        Config.ForceOsrEntry && Config.ForceOsrEntry(Method, Header, Count);
    if (Forced || Count >= Threshold)
      requestOsrCompile(Method, Header, State, Count);
  }

  // Entry only at the credited header itself: an irreducible retreating
  // edge heats its enclosing natural header but never transfers at its own
  // target, where the live frame is not the loop-entry frame.
  if (To.id() != Header)
    return nullptr;
  const ir::Function *Variant = Code.lookupOsr(Method, Header);
  if (!Variant)
    return nullptr;
  ++Stats.OsrEntries;
  return Variant;
}

void JitRuntime::requestOsrCompile(std::string_view Symbol,
                                   unsigned HeaderBlockId, OsrState &State,
                                   uint64_t BackedgeCount) {
  if (Config.Mode == JitMode::Sync || !Queue) {
    ++Stats.OsrCompileRequests;
    CompileTask Task;
    Task.Symbol = std::string(Symbol);
    Task.TaskKind = CompileTask::Kind::Osr;
    Task.OsrHeaderBlockId = HeaderBlockId;
    Task.Rung = State.Rung;
    Task.Cancel = makeCompileToken(Symbol, State);
    compileOnMutator(Task);
    return;
  }

  CompileTask Task;
  Task.Symbol = std::string(Symbol);
  Task.TaskKind = CompileTask::Kind::Osr;
  Task.OsrHeaderBlockId = HeaderBlockId;
  Task.Hotness = BackedgeCount;
  Task.Rung = State.Rung;
  Task.Cancel = makeCompileToken(Symbol, State);
  Task.ProfilesSnapshot = Profiles;
  Task.BlacklistSnapshot = Blacklist;
  Task.PruneBlacklistSnapshot = PruneBlacklist;
  Task.ForceColdBranch = Config.ForceColdBranch;
  Task.Reachable = ensureReachability();

  CompileQueue::Outcome Enq = Queue->tryEnqueue(std::move(Task));
  if (Enq != CompileQueue::Outcome::Enqueued) {
    if (Enq == CompileQueue::Outcome::Full)
      ++Stats.QueueFullRejections;
    State.NextAttemptAt = BackedgeCount + 1 + Config.OsrBackedgeThreshold / 4;
    return;
  }
  ++Stats.OsrCompileRequests;
  State.InFlight = true;
  Code.pin(Symbol);

  if (Config.Mode == JitMode::Deterministic) {
    // Same blocking-drain safepoint as method tasks: the variant installs
    // at the exact backedge crossing a sync-mode compile would have used,
    // which is what keeps the compile stream bit-identical to Sync.
    StallTimer Stall(Stats.MutatorStallNanos);
    publishBatch(Pool->waitUntilDrained());
  }
}

void JitRuntime::compileOnMutator(const CompileTask &TaskShape) {
  const ir::Function *Source = M.function(TaskShape.Symbol);
  if (!Source)
    return;
  StallTimer Stall(Stats.MutatorStallNanos);
  CompileInProgressGuard Guard(CompilationInProgress);
  // Same pin discipline as the queue path; publishOutcome unpins.
  Code.pin(TaskShape.Symbol);

  CompileOutcome Outcome;
  Outcome.Task.Symbol = TaskShape.Symbol;
  Outcome.Task.TaskKind = TaskShape.TaskKind;
  Outcome.Task.OsrHeaderBlockId = TaskShape.OsrHeaderBlockId;
  Outcome.Task.Rung = TaskShape.Rung;
  Outcome.Task.Upgrade = TaskShape.Upgrade;
  Outcome.Task.Cancel = TaskShape.Cancel;

  std::unique_ptr<ir::Function> Skeleton;
  if (TaskShape.TaskKind == CompileTask::Kind::Osr) {
    Skeleton = opt::buildOsrVariant(*Source, TaskShape.OsrHeaderBlockId);
    if (!Skeleton) {
      Outcome.Error = "osr header unavailable";
      publishOutcome(std::move(Outcome));
      return;
    }
    Source = Skeleton.get();
  }

  // Mutator compiles read the live blacklists — at this point they equal
  // any snapshot a deterministic-mode enqueue would have taken here. The
  // member shared_ptr keeps the reachability object alive past the
  // temporary returned here.
  opt::PassContext Ctx = TheCompiler.passContext();
  Ctx.Blacklist = &Blacklist;
  Ctx.PruneBlacklist = &PruneBlacklist;
  Ctx.ForceColdBranch = Config.ForceColdBranch;
  Ctx.Reachable = ensureReachability().get();
  Ctx.Cancel = TaskShape.Cancel.get();
  Ctx.DegradeRung = TaskShape.Rung;
  try {
    Outcome.Code =
        TheCompiler.compile(*Source, M, Profiles, Outcome.Stats, Ctx);
  } catch (const support::DeadlineExceeded &E) {
    Outcome.Code = nullptr;
    Outcome.Error = E.what();
    Outcome.Exception = true;
    Outcome.Class = CompileOutcome::BailoutClass::Deadline;
  } catch (const support::ResourceExhausted &E) {
    Outcome.Code = nullptr;
    Outcome.Error = E.what();
    Outcome.Exception = true;
    Outcome.Class = CompileOutcome::BailoutClass::Resource;
  } catch (const std::bad_alloc &) {
    Outcome.Code = nullptr;
    Outcome.Error = "out of memory during compilation";
    Outcome.Exception = true;
    Outcome.Class = CompileOutcome::BailoutClass::Resource;
  } catch (const std::exception &E) {
    Outcome.Code = nullptr;
    Outcome.Error = E.what();
    Outcome.Exception = true;
  } catch (...) {
    Outcome.Code = nullptr;
    Outcome.Error = "unknown compiler exception";
    Outcome.Exception = true;
  }
  publishOutcome(std::move(Outcome));
}

void JitRuntime::publishBatch(std::vector<CompileOutcome> Batch) {
  for (CompileOutcome &Outcome : Batch) {
    ++ConsumedOutcomes;
    publishOutcome(std::move(Outcome));
  }
}

void JitRuntime::publishOutcome(CompileOutcome &&Outcome) {
  // The request pinned the symbol (enqueue or mutator-compile start); the
  // outcome — whatever it is — ends the flight.
  Code.unpin(Outcome.Task.Symbol);

  const bool IsOsr = Outcome.Task.TaskKind == CompileTask::Kind::Osr;
  TierState &State =
      IsOsr ? OsrStates[{Outcome.Task.Symbol, Outcome.Task.OsrHeaderBlockId}]
            : stateOf(Outcome.Task.Symbol);
  State.InFlight = false;

  // Backoff base: the anchor's live trigger counter — hotness for method
  // anchors, the current backedge count for OSR anchors.
  uint64_t TriggerCount = State.Hotness;
  uint64_t FallbackThreshold = Config.CompileThreshold;
  if (IsOsr) {
    FallbackThreshold = Config.OsrBackedgeThreshold;
    TriggerCount = 0;
    if (const profile::MethodProfile *P = Profiles.find(Outcome.Task.Symbol)) {
      auto It = P->Backedges.find(Outcome.Task.OsrHeaderBlockId);
      if (It != P->Backedges.end())
        TriggerCount = It->second;
    }
  }

  // Cancelled outcomes are neutral: the work was retired mid-flight (deopt
  // invalidation, eviction, shutdown), so whatever the worker produced —
  // even valid code against the stale snapshot — is discarded without a
  // strike. The anchor is typically still hot and the cancel cause wants a
  // fresh compile: retry at the next trigger.
  if (Outcome.Cancelled) {
    ++Stats.CompilesCancelled;
    if (!State.Compiled)
      State.NextAttemptAt = TriggerCount + 1;
    return;
  }

  // A re-heated ladder upgrade replaces the anchor's installed degraded
  // body instead of being discarded as stale (DESIGN.md §14).
  const bool IsUpgrade = !IsOsr && Outcome.Task.Upgrade && State.Compiled &&
                         Outcome.Task.Rung < State.Rung;
  if (State.Compiled && !IsUpgrade) {
    // Code for this anchor was already installed (e.g. a forced compileNow
    // while the task was in flight). Overwriting the cache entry would
    // destroy a Function the interpreter may be executing; record the
    // stale outcome and discard it.
    ++Stats.StaleOutcomesDiscarded;
    return;
  }
  const bool IsDeadline =
      Outcome.Class == CompileOutcome::BailoutClass::Deadline;
  const bool Supervision =
      Outcome.Class != CompileOutcome::BailoutClass::None;
  if (!Outcome.Code) {
    if (IsUpgrade) {
      // The upgrade attempt failed; the installed degraded code keeps
      // serving. No strike, no rung change — just push the next retry out.
      ++Stats.Bailouts;
      if (Supervision)
        ++(IsDeadline ? Stats.DeadlineBailouts : Stats.ResourceBailouts);
      applyBackoff(State, TriggerCount, FallbackThreshold, !IsOsr);
      return;
    }
    if (Supervision && Config.DegradeLadder) {
      stepDownLadder(State, TriggerCount, FallbackThreshold, !IsOsr,
                     IsDeadline);
      return;
    }
    if (Supervision)
      ++(IsDeadline ? Stats.DeadlineBailouts : Stats.ResourceBailouts);
    recordBailout(State, TriggerCount, FallbackThreshold, !IsOsr,
                  Outcome.Exception, /*Permanent=*/false);
    return;
  }
  // Verify unconditionally — never behind assert/NDEBUG: installing
  // unverified code in a Release build is how miscompiles escape. Invalid
  // code is a (permanent) bailout; the method stays interpreted. Frame
  // states get the same treatment: compiled functions are not module
  // members, so verifyModule never sees them — this is the only gate
  // between a dangling deopt recipe and the interpreter. OSR variants add
  // the entry-descriptor contract: descriptors must resolve against the
  // baseline at the anchored header, or the interpreter's frame transfer
  // would read values the interpreted frame does not hold.
  if (!ir::verifyFunction(*Outcome.Code).empty() ||
      !ir::verifyFrameStates(*Outcome.Code, M).empty() ||
      (IsOsr && !ir::verifyOsrEntries(*Outcome.Code, M).empty())) {
    ++Stats.VerifyFailures;
    if (IsUpgrade) {
      // Broken upgrade body: keep the working degraded code. No strike —
      // the anchor's installed code is fine, only the retry is deferred.
      ++Stats.Bailouts;
      applyBackoff(State, TriggerCount, FallbackThreshold, !IsOsr);
      return;
    }
    recordBailout(State, TriggerCount, FallbackThreshold, !IsOsr,
                  /*WasException=*/false, /*Permanent=*/true);
    return;
  }

  CompilationRecord Record;
  Record.Symbol = IsOsr ? Outcome.Task.dedupKey() // "method@osr<header>".
                        : Outcome.Task.Symbol;
  Record.Stats = Outcome.Stats;
  Record.Stats.CodeSize = Outcome.Code->instructionCount();
  Record.CompileIndex = Compilations.size();
  Record.Attempt = State.FailedAttempts + 1;
  Record.IRFingerprint = fnv1a(ir::printFunction(*Outcome.Code));
  Record.Rung = Outcome.Task.Rung;

  // Install through the budgeted code cache. The record joins the compile
  // stream only when the code actually lands: a budget rejection is a
  // bailout, not a compilation.
  std::string Symbol = Outcome.Task.Symbol;
  if (IsUpgrade) {
    // Replace the degraded body: retire it (and any OSR variants compiled
    // alongside it — they embed the same degraded assumptions) through the
    // eviction path, then install the better body below.
    std::vector<CodeCache::Key> Retired = Code.evict(Symbol);
    for (const CodeCache::Key &K : Retired)
      if (!K.isMethod()) {
        OsrState &OS = OsrStates[{K.Symbol, K.Header}];
        OS.Compiled = false;
        OS.NextAttemptAt = 0;
        Profiles.methodProfile(K.Symbol).Backedges[K.Header] = 0;
      }
    if (Code.installedMethod(Symbol)) {
      // A concurrent pin (e.g. an in-flight OSR task of this symbol)
      // blocked the retire; keep the old body and retry the upgrade later.
      ++Stats.Bailouts;
      applyBackoff(State, TriggerCount, FallbackThreshold, !IsOsr);
      return;
    }
    State.Compiled = false;
  }
  CodeCache::InstallOutcome Install =
      IsOsr ? Code.installOsr(Symbol, Outcome.Task.OsrHeaderBlockId,
                              std::move(Outcome.Code))
            : Code.installMethod(Symbol, std::move(Outcome.Code));
  // Budget eviction made room by retiring someone else's code: reset the
  // victims' tier state so they re-warm honestly. Before the status
  // checks: eviction is transactional (a rejected install retires nobody,
  // so Evicted is empty on the rejection paths), but any victim that *was*
  // retired must re-warm regardless of what happened to the install.
  noteEvicted(Install.Evicted);
  if (Install.Status == CodeCache::InstallStatus::RejectedTooBig) {
    if (IsUpgrade) {
      // The upgraded body outgrew the budget the degraded one fit in. The
      // old body is already retired (the method re-warms), but a bigger
      // body is a property of this rung, not of the method: back off
      // without a strike and let the degraded rung re-install.
      ++Stats.Bailouts;
      applyBackoff(State, TriggerCount, FallbackThreshold, !IsOsr);
      return;
    }
    // The body alone exceeds the whole budget; no amount of eviction or
    // re-warming changes that. Permanent: stay interpreted.
    recordBailout(State, TriggerCount, FallbackThreshold, !IsOsr,
                  /*WasException=*/false, /*Permanent=*/true);
    return;
  }
  if (Install.Status == CodeCache::InstallStatus::RejectedPinned) {
    // Transient: the unpinned residents cannot free enough room while
    // in-flight compilations hold their pins. Not a compile failure —
    // back off and retry once the flights land, WITHOUT a FailedAttempts
    // strike: pin contention says nothing about this method's
    // compilability, and MaxCompileAttempts strikes would blacklist a hot
    // method forever under sustained budget thrash.
    ++Stats.Bailouts;
    applyBackoff(State, TriggerCount, FallbackThreshold, !IsOsr);
    return;
  }

  Stats.GuardsEmitted += Record.Stats.GuardsEmitted;
  Stats.BranchesPruned += Record.Stats.BranchesPruned;
  Compilations.push_back(std::move(Record));
  State.Compiled = true;
  if (!IsOsr) {
    if (IsUpgrade)
      ++Stats.LadderUpgrades;
    State.Rung = Outcome.Task.Rung;
    if (State.Rung != 0 && State.Rung < RungInterpreterOnly &&
        Config.DegradeLadder) {
      // Degraded code is serving; schedule the re-heat distance the anchor
      // must cover before the next upgrade attempt (maybeRequestUpgrade
      // compares Hotness against this on every invocation of the compiled
      // body).
      uint64_t Factor = Config.BailoutBackoffFactor > 1
                            ? Config.BailoutBackoffFactor
                            : 2;
      uint64_t Threshold =
          Config.CompileThreshold != 0 ? Config.CompileThreshold : 1;
      State.NextAttemptAt = State.Hotness + Threshold * Factor;
    }
  }
  if (!IsOsr && State.DeoptPending) {
    State.DeoptPending = false;
    ++Stats.RecompilesAfterDeopt;
  }
}

void JitRuntime::recordBailout(TierState &State, uint64_t TriggerCount,
                               uint64_t FallbackThreshold, bool IsMethodAnchor,
                               bool WasException, bool Permanent) {
  ++Stats.Bailouts;
  if (WasException)
    ++Stats.CompileExceptions;
  ++State.FailedAttempts;
  if (Permanent || State.FailedAttempts >= Config.MaxCompileAttempts) {
    if (!State.DoNotCompile) {
      State.DoNotCompile = true;
      if (IsMethodAnchor)
        ++Stats.BlacklistedMethods;
    }
    return;
  }
  applyBackoff(State, TriggerCount, FallbackThreshold, IsMethodAnchor);
}

void JitRuntime::applyBackoff(TierState &State, uint64_t TriggerCount,
                              uint64_t FallbackThreshold,
                              bool IsMethodAnchor) {
  // Exponential backoff: the anchor must earn its next attempt instead of
  // re-running the pipeline on every subsequent trigger.
  uint64_t Base = State.NextAttemptAt > TriggerCount ? State.NextAttemptAt
                                                     : TriggerCount;
  if (Base == 0 && !IsMethodAnchor)
    Base = FallbackThreshold != 0 ? FallbackThreshold : 1;
  uint64_t Factor = Config.BailoutBackoffFactor > 1
                        ? Config.BailoutBackoffFactor
                        : 2;
  State.NextAttemptAt = Base * Factor;
}

void JitRuntime::stepDownLadder(TierState &State, uint64_t TriggerCount,
                                uint64_t FallbackThreshold,
                                bool IsMethodAnchor, bool IsDeadline) {
  // A deadline or resource bailout is a property of the *rung*, not of the
  // method: the fix is a cheaper compilation, not a blacklist strike
  // (DESIGN.md §14). Step down one rung and retry after backoff; only the
  // bottom rung gives up on compilation — and even that is an explicit
  // interpreter-only decision, not a blacklist entry.
  ++Stats.Bailouts;
  ++(IsDeadline ? Stats.DeadlineBailouts : Stats.ResourceBailouts);
  ++Stats.LadderStepDowns;
  ++State.Rung;
  if (State.Rung >= RungInterpreterOnly) {
    State.DoNotCompile = true;
    ++Stats.LadderInterpreterOnly;
    return;
  }
  applyBackoff(State, TriggerCount, FallbackThreshold, IsMethodAnchor);
}

void JitRuntime::cancelInFlight(std::string_view Symbol) {
  if (!Pool)
    return;
  // Still-queued tasks come back removed; account their flights over here
  // (unpin + InFlight reset) since no outcome will ever arrive for them.
  // Tasks a worker already picked up keep flying: their tokens got a
  // cancel request and their outcomes arrive marked Cancelled, which
  // publishOutcome discards neutrally.
  for (const CompileTask &T : Pool->cancelTasksFor(Symbol)) {
    ++Stats.CompilesCancelled;
    Code.unpin(T.Symbol);
    TierState &State = T.TaskKind == CompileTask::Kind::Osr
                           ? static_cast<TierState &>(
                                 OsrStates[{T.Symbol, T.OsrHeaderBlockId}])
                           : stateOf(T.Symbol);
    State.InFlight = false;
  }
}

void JitRuntime::onDeopt(std::string_view Method,
                         const ir::DeoptInst &Deopt) {
  const ir::FrameState &FS = Deopt.frameState();
  if (Deopt.isColdBranch()) {
    // An uncommon trap fired: the profile lied about the branch being
    // cold, nothing more. This is *not* a guard failure — no speculation
    // failure counter, no MaxSpeculationFailures ladder. The prune is
    // retired immediately (keyed by the cold target's baseline block id):
    // unlike a speculation guard, keeping the branch costs nothing, so one
    // trap is all the evidence needed. The recompile below re-reads the
    // re-profiled branch through the grown blacklist and converges to an
    // unpruned body.
    ++Stats.ColdBranchDeopts;
    if (!PruneBlacklist.contains(Method, FS.BaselineBlockId)) {
      PruneBlacklist.add(Method, FS.BaselineBlockId);
      ++Stats.PrunesBlacklisted;
      // The prune blacklist feeds future compilations; memoized compile
      // work from before this entry existed must not be replayed.
      if (CompileCache *Cache = TheCompiler.compileCache())
        Cache->invalidateForRuntimeEvent();
    }
    invalidate(Method);
    return;
  }
  ++Stats.GuardFailures;
  // Track the failed speculation per (method, baseline callsite). At the
  // cap, blacklist it: the recompile below (and every later one) leaves
  // the site as a plain virtual call, so the method converges to a
  // guard-free body instead of deopt-looping on a lying profile.
  unsigned &Failures =
      SpeculationFailures[{std::string(Method), FS.ResumePoint}];
  ++Failures;
  if (Failures >= Config.MaxSpeculationFailures &&
      !Blacklist.contains(Method, FS.ResumePoint)) {
    Blacklist.add(Method, FS.ResumePoint);
    ++Stats.SpeculationsBlacklisted;
    // The blacklist feeds future compilations; memoized compile work from
    // before this entry existed must not be replayed.
    if (CompileCache *Cache = TheCompiler.compileCache())
      Cache->invalidateForRuntimeEvent();
  }
  invalidate(Method);
}

void JitRuntime::invalidate(std::string_view Symbol) {
  // Retire, never destroy: the deoptimizing interpreter frames up the C++
  // stack are still executing this Function. Publication stays write-once
  // (PR 3's idempotence rules): the code cache moves the entries to its
  // graveyard and bumps the epoch; nothing ever mutates an installed body
  // in place. OSR variants of the method embed the same failed speculation
  // (compiled from the same baseline against the same profiles), so a
  // deopt retires them alongside the method body — including when the
  // deopt came *from* an OSR body of a never-method-compiled method.
  std::vector<CodeCache::Key> Retired = Code.invalidate(Symbol);
  if (Retired.empty())
    return; // Already invalidated (e.g. repeated deopts of retired code).

  // Cooperative cancellation: any in-flight compile of this symbol is
  // building against assumptions this invalidation just broke. Queued
  // tasks are removed outright; running workers abandon at their next
  // checkpoint and their outcomes are discarded as Cancelled.
  cancelInFlight(Symbol);

  bool RetiredMethod = false;
  for (const CodeCache::Key &K : Retired) {
    if (K.isMethod())
      RetiredMethod = true;
    else
      // The loop is still hot; the next backedge crossing re-requests
      // against the updated blacklist.
      OsrStates[{K.Symbol, K.Header}].Compiled = false;
  }
  // Code-epoch bump: flush memoized compile work along with the code.
  if (CompileCache *Cache = TheCompiler.compileCache())
    Cache->invalidateForRuntimeEvent();
  if (!RetiredMethod)
    return; // OSR-only retire: nothing method-level to recompile.

  MethodState &State = stateOf(Symbol);
  State.Compiled = false;
  State.DeoptPending = true;
  // The method is still hot — request the recompile immediately rather
  // than re-warming from zero. If an async task is already in flight its
  // outcome will install normally (State.Compiled is false again); a
  // pre-invalidation snapshot may re-speculate once, after which the
  // failure counter above retires the speculation for good.
  if (!State.InFlight && !State.DoNotCompile && !CompilationInProgress)
    requestCompile(Symbol, State);
}

void JitRuntime::noteEvicted(const std::vector<CodeCache::Key> &Evicted) {
  // Eviction is a resource decision, not a correctness event: nothing is
  // blacklisted, no recompile is requested, and the compiler's memoization
  // cache is untouched (no assumption changed — which is exactly what
  // makes the evict -> reheat -> recompile round trip cheap). The victims
  // simply fall back to the interpreter and re-warm from zero.
  for (const CodeCache::Key &K : Evicted) {
    if (K.isMethod()) {
      MethodState &State = stateOf(K.Symbol);
      State.Compiled = false;
      State.Hotness = 0;
      State.NextAttemptAt = Config.CompileThreshold;
    } else {
      OsrState &State = OsrStates[{K.Symbol, K.Header}];
      State.Compiled = false;
      State.NextAttemptAt = 0;
      // Restart the loop's trigger counter too: the variant must earn its
      // reinstall with fresh backedges, not with the stale count that got
      // it evicted.
      Profiles.methodProfile(K.Symbol).Backedges[K.Header] = 0;
    }
  }
}

void JitRuntime::evictNow(std::string_view Symbol) {
  // Eviction respects pins, so a symbol with a compile in flight normally
  // cannot be evicted — but cancel defensively anyway: if anything *was*
  // retired while work was queued or flying, that work is for a body the
  // runtime just decided not to keep.
  std::vector<CodeCache::Key> Evicted = Code.evict(Symbol);
  if (!Evicted.empty())
    cancelInFlight(Symbol);
  noteEvicted(Evicted);
}

void JitRuntime::drainCompilations() {
  if (!Pool)
    return;
  StallTimer Stall(Stats.MutatorStallNanos);
  publishBatch(Pool->waitUntilDrained());
}

void JitRuntime::compileNow(std::string_view Symbol) {
  if (Code.installedMethod(Symbol))
    return;
  // Refuse while a background compile of the same symbol is in flight:
  // compiling here as well would race two publications of one method
  // (the worker's later outcome is dropped as stale, but the forced
  // compile would double-count work the caller did not ask for).
  MethodState &State = stateOf(Symbol);
  if (State.InFlight)
    return;
  CompileTask Task;
  Task.Symbol = std::string(Symbol);
  Task.Rung = State.Rung; // A degraded anchor stays degraded when forced.
  Task.Cancel = makeCompileToken(Symbol, State);
  compileOnMutator(Task);
}

const ir::Function *
JitRuntime::installedOsrVariant(std::string_view Method,
                                unsigned HeaderBlockId) const {
  return Code.installedOsr(Method, HeaderBlockId);
}

interp::ExecResult JitRuntime::runMain() {
  return run("main");
}

interp::ExecResult JitRuntime::runMain(const interp::ExecLimits &Limits) {
  return run("main", {}, Limits);
}

interp::ExecResult JitRuntime::run(std::string_view Symbol,
                                   const std::vector<interp::RtValue> &Args,
                                   const interp::ExecLimits &Limits) {
  interp::Interpreter Interp(M, *this, interp::CostModel(), Limits,
                             Config.Interp, &DecodedBodies);
  return Interp.run(Symbol, Args);
}

uint64_t JitRuntime::installedCodeSize() const {
  // Method bodies only, by design: OSR variants share the method's working
  // set, and the i-cache pressure term predates them (continuity of the
  // harness's effective-cycle numbers).
  return Code.methodBytes();
}

double JitRuntime::effectiveCycles(const interp::ExecResult &R) const {
  double Pressure = interp::CostModel::icachePressure(installedCodeSize());
  return static_cast<double>(R.InterpretedCycles) +
         static_cast<double>(R.CompiledCycles) * Pressure;
}
