//===- jit/JitRuntime.cpp -----------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "jit/JitRuntime.h"

#include "interp/CostModel.h"
#include "ir/IRVerifier.h"
#include "support/ErrorHandling.h"

using namespace incline;
using namespace incline::jit;

Compiler::~Compiler() = default;

JitRuntime::JitRuntime(ir::Module &M, Compiler &TheCompiler, JitConfig Config)
    : M(M), TheCompiler(TheCompiler), Config(Config) {}

interp::ResolvedBody JitRuntime::resolve(std::string_view Symbol) {
  interp::ResolvedBody Body;
  Body.ProfileName = std::string(Symbol);
  auto It = CodeCache.find(Symbol);
  if (It != CodeCache.end()) {
    Body.F = It->second.get();
    Body.Compiled = true;
    return Body;
  }
  Body.F = M.function(Symbol);
  Body.Compiled = false;
  return Body;
}

void JitRuntime::onInvoke(std::string_view Symbol) {
  if (!Config.Enabled || CodeCache.count(Symbol))
    return;
  auto It = HotnessCounters.find(Symbol);
  if (It == HotnessCounters.end())
    It = HotnessCounters.emplace(std::string(Symbol), 0).first;
  ++It->second;
  if (It->second < Config.CompileThreshold)
    return;
  // Guard against reentrant compilation (the compiler itself never runs
  // MiniOO code, but be defensive).
  if (CompilationInProgress)
    return;
  compileNow(Symbol);
}

void JitRuntime::compileNow(std::string_view Symbol) {
  const ir::Function *Source = M.function(Symbol);
  if (!Source || CodeCache.count(Symbol))
    return;
  CompilationInProgress = true;
  CompilationRecord Record;
  Record.Symbol = std::string(Symbol);
  Record.CompileIndex = Compilations.size();
  std::unique_ptr<ir::Function> Code =
      TheCompiler.compile(*Source, M, Profiles, Record.Stats);
  CompilationInProgress = false;
  if (!Code)
    return; // The compiler bailed out; stay interpreted.
  assert(ir::verifyFunction(*Code).empty() &&
         "compiler produced invalid code");
  Record.Stats.CodeSize = Code->instructionCount();
  Compilations.push_back(Record);
  CodeCache.emplace(std::string(Symbol), std::move(Code));
}

interp::ExecResult JitRuntime::runMain() {
  interp::Interpreter Interp(M, *this);
  return Interp.run("main");
}

uint64_t JitRuntime::installedCodeSize() const {
  uint64_t Total = 0;
  for (const auto &[Symbol, F] : CodeCache)
    Total += F->instructionCount();
  return Total;
}

double JitRuntime::effectiveCycles(const interp::ExecResult &R) const {
  double Pressure = interp::CostModel::icachePressure(installedCodeSize());
  return static_cast<double>(R.InterpretedCycles) +
         static_cast<double>(R.CompiledCycles) * Pressure;
}
