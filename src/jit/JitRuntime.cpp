//===- jit/JitRuntime.cpp -----------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "jit/JitRuntime.h"

#include "interp/CostModel.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "jit/CompileQueue.h"
#include "jit/CompileWorkerPool.h"
#include "support/ErrorHandling.h"
#include "support/StringUtils.h"

#include <chrono>
#include <exception>

using namespace incline;
using namespace incline::jit;

Compiler::~Compiler() = default;
CompileCache::~CompileCache() = default;

std::string_view incline::jit::jitModeName(JitMode Mode) {
  switch (Mode) {
  case JitMode::Sync: return "sync";
  case JitMode::Async: return "async";
  case JitMode::Deterministic: return "deterministic";
  }
  return "unknown";
}

namespace {

/// RAII latch for the reentrancy guard: unlatches even when the compiler
/// throws, so one failed compilation cannot silently disable the JIT for
/// the rest of the run.
class CompileInProgressGuard {
public:
  explicit CompileInProgressGuard(bool &Flag) : Flag(Flag) { Flag = true; }
  ~CompileInProgressGuard() { Flag = false; }
  CompileInProgressGuard(const CompileInProgressGuard &) = delete;
  CompileInProgressGuard &operator=(const CompileInProgressGuard &) = delete;

private:
  bool &Flag;
};

/// Accumulates wall time into a mutator-stall counter.
class StallTimer {
public:
  explicit StallTimer(uint64_t &Sink)
      : Sink(Sink), Start(std::chrono::steady_clock::now()) {}
  ~StallTimer() {
    Sink += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  }

private:
  uint64_t &Sink;
  std::chrono::steady_clock::time_point Start;
};

uint64_t fnv1a(std::string_view Data) {
  uint64_t Hash = 1469598103934665603ull;
  for (unsigned char C : Data) {
    Hash ^= C;
    Hash *= 1099511628211ull;
  }
  return Hash;
}

} // namespace

std::string
incline::jit::streamFingerprint(const std::vector<CompilationRecord> &Stream) {
  std::string Out;
  for (const CompilationRecord &R : Stream)
    Out += formatString(
        "#%llu %s attempt=%u size=%llu inlined=%llu rounds=%llu "
        "explored=%llu opts=%llu guards=%llu passes=%llu hits=%llu "
        "misses=%llu ir=%016llx\n",
        static_cast<unsigned long long>(R.CompileIndex), R.Symbol.c_str(),
        R.Attempt, static_cast<unsigned long long>(R.Stats.CodeSize),
        static_cast<unsigned long long>(R.Stats.InlinedCallsites),
        static_cast<unsigned long long>(R.Stats.Rounds),
        static_cast<unsigned long long>(R.Stats.ExploredNodes),
        static_cast<unsigned long long>(R.Stats.OptsTriggered),
        static_cast<unsigned long long>(R.Stats.GuardsEmitted),
        static_cast<unsigned long long>(R.Stats.PassRuns),
        static_cast<unsigned long long>(R.Stats.AnalysisCacheHits),
        static_cast<unsigned long long>(R.Stats.AnalysisCacheMisses),
        static_cast<unsigned long long>(R.IRFingerprint));
  return Out;
}

JitRuntime::JitRuntime(ir::Module &M, Compiler &TheCompiler, JitConfig Config)
    : M(M), TheCompiler(TheCompiler), Config(Config) {
  if (this->Config.Enabled && this->Config.Mode != JitMode::Sync) {
    CompileQueue::PopOrder Order = this->Config.Mode == JitMode::Deterministic
                                       ? CompileQueue::PopOrder::Fifo
                                       : CompileQueue::PopOrder::Priority;
    Queue = std::make_unique<CompileQueue>(this->Config.QueueCapacity, Order);
    Pool = std::make_unique<CompileWorkerPool>(*Queue, TheCompiler, M,
                                               this->Config.Threads);
  }
}

JitRuntime::~JitRuntime() {
  if (Pool)
    Pool->shutdown();
}

interp::ResolvedBody JitRuntime::resolve(std::string_view Symbol) {
  interp::ResolvedBody Body;
  Body.ProfileName = std::string(Symbol);
  auto It = CodeCache.find(Symbol);
  if (It != CodeCache.end()) {
    Body.F = It->second.get();
    Body.Compiled = true;
    return Body;
  }
  Body.F = M.function(Symbol);
  Body.Compiled = false;
  // Interpreted tier: mark loop-bearing bodies OSR-eligible so the
  // interpreter reports their taken backedges. The plan is computed once
  // per method (the module is immutable at runtime) and an empty plan
  // keeps the flag off — the dispatch loop pays nothing for loop-free
  // methods.
  if (Body.F && Config.Enabled && Config.Osr)
    Body.OsrEligible = !osrPlanFor(Symbol).empty();
  return Body;
}

const opt::OsrPlan &JitRuntime::osrPlanFor(std::string_view Symbol) {
  auto It = OsrPlans.find(Symbol);
  if (It != OsrPlans.end())
    return It->second;
  opt::OsrPlan Plan;
  if (const ir::Function *F = M.function(Symbol))
    Plan = opt::computeOsrPlan(*F);
  return OsrPlans.emplace(std::string(Symbol), std::move(Plan)).first->second;
}

JitRuntime::MethodState &JitRuntime::stateOf(std::string_view Symbol) {
  auto It = Methods.find(Symbol);
  if (It == Methods.end()) {
    It = Methods.emplace(std::string(Symbol), MethodState()).first;
    It->second.NextAttemptAt = Config.CompileThreshold;
  }
  return It->second;
}

void JitRuntime::onInvoke(std::string_view Symbol) {
  if (!Config.Enabled)
    return;
  MethodState &State = stateOf(Symbol);
  if (State.Compiled)
    return; // Fast path: hotness stops once compiled.
  ++State.Hotness;
  if (State.InFlight || State.DoNotCompile)
    return;
  if (State.Hotness < State.NextAttemptAt)
    return; // Fast path: not yet hot (or backing off after a bailout).
  // Guard against reentrant compilation (the compiler itself never runs
  // MiniOO code, but be defensive).
  if (CompilationInProgress)
    return;
  requestCompile(Symbol, State);
}

void JitRuntime::onSafepoint() {
  if (Config.Mode != JitMode::Async || !Pool)
    return;
  // One relaxed atomic load when nothing finished — the safepoint poll is
  // on the interpreter's block-transition path.
  if (Pool->deliveredCount() == ConsumedOutcomes)
    return;
  StallTimer Stall(Stats.MutatorStallNanos);
  publishBatch(Pool->takeCompleted());
}

void JitRuntime::requestCompile(std::string_view Symbol, MethodState &State) {
  if (Config.Mode == JitMode::Sync || !Queue) {
    ++Stats.CompileRequests;
    compileOnMutator(Symbol);
    return;
  }

  CompileTask Task;
  Task.Symbol = std::string(Symbol);
  Task.Hotness = State.Hotness;
  // Snapshot the live profiles (and the speculation blacklist): the worker
  // sees exactly the state a synchronous compile at this threshold
  // crossing would have seen — the deterministic-mode bit-identity
  // guarantee extends to speculation decisions.
  Task.ProfilesSnapshot = Profiles;
  Task.BlacklistSnapshot = Blacklist;

  CompileQueue::Outcome Enq = Queue->tryEnqueue(std::move(Task));
  if (Enq != CompileQueue::Outcome::Enqueued) {
    // Backpressure: stay interpreted and retry once the method has warmed
    // further, instead of re-snapshotting profiles every invocation.
    if (Enq == CompileQueue::Outcome::Full)
      ++Stats.QueueFullRejections;
    State.NextAttemptAt = State.Hotness + 1 + Config.CompileThreshold / 4;
    return;
  }
  ++Stats.CompileRequests;
  State.InFlight = true;

  if (Config.Mode == JitMode::Deterministic) {
    // The enqueue is the safepoint: block until the worker finishes and
    // install in enqueue order, exactly where Sync mode would have
    // compiled.
    StallTimer Stall(Stats.MutatorStallNanos);
    publishBatch(Pool->waitUntilDrained());
  }
}

const ir::Function *JitRuntime::onOsrEdge(std::string_view Method,
                                          const ir::BasicBlock &From,
                                          const ir::BasicBlock &To) {
  if (!Config.Enabled || !Config.Osr)
    return nullptr;
  const opt::OsrPlan &Plan = osrPlanFor(Method);
  unsigned Header = Plan.headerForEdge(From.id(), To.id());
  if (Header == opt::OsrPlan::NoHeader)
    return nullptr;
  // Backedge profiling lives in the ordinary profile table: snapshots taken
  // at enqueue time carry it to workers like every other profile.
  uint64_t Count = ++Profiles.methodProfile(Method).Backedges[Header];

  OsrState &State = OsrStates[{std::string(Method), Header}];
  if (!State.Compiled && !State.InFlight && !State.DoNotCompile &&
      !CompilationInProgress) {
    uint64_t Threshold = State.NextAttemptAt != 0 ? State.NextAttemptAt
                                                  : Config.OsrBackedgeThreshold;
    bool Forced =
        Config.ForceOsrEntry && Config.ForceOsrEntry(Method, Header, Count);
    if (Forced || Count >= Threshold)
      requestOsrCompile(Method, Header, State, Count);
  }

  // Entry only at the credited header itself: an irreducible retreating
  // edge heats its enclosing natural header but never transfers at its own
  // target, where the live frame is not the loop-entry frame.
  if (To.id() != Header)
    return nullptr;
  auto It = OsrCache.find({std::string(Method), Header});
  if (It == OsrCache.end())
    return nullptr;
  ++Stats.OsrEntries;
  return It->second.get();
}

void JitRuntime::requestOsrCompile(std::string_view Symbol,
                                   unsigned HeaderBlockId, OsrState &State,
                                   uint64_t BackedgeCount) {
  if (Config.Mode == JitMode::Sync || !Queue) {
    ++Stats.OsrCompileRequests;
    compileOsrOnMutator(Symbol, HeaderBlockId);
    return;
  }

  CompileTask Task;
  Task.Symbol = std::string(Symbol);
  Task.TaskKind = CompileTask::Kind::Osr;
  Task.OsrHeaderBlockId = HeaderBlockId;
  Task.Hotness = BackedgeCount;
  Task.ProfilesSnapshot = Profiles;
  Task.BlacklistSnapshot = Blacklist;

  CompileQueue::Outcome Enq = Queue->tryEnqueue(std::move(Task));
  if (Enq != CompileQueue::Outcome::Enqueued) {
    if (Enq == CompileQueue::Outcome::Full)
      ++Stats.QueueFullRejections;
    State.NextAttemptAt = BackedgeCount + 1 + Config.OsrBackedgeThreshold / 4;
    return;
  }
  ++Stats.OsrCompileRequests;
  State.InFlight = true;

  if (Config.Mode == JitMode::Deterministic) {
    // Same blocking-drain safepoint as method tasks: the variant installs
    // at the exact backedge crossing a sync-mode compile would have used,
    // which is what keeps the compile stream bit-identical to Sync.
    StallTimer Stall(Stats.MutatorStallNanos);
    publishBatch(Pool->waitUntilDrained());
  }
}

void JitRuntime::compileOsrOnMutator(std::string_view Symbol,
                                     unsigned HeaderBlockId) {
  const ir::Function *Source = M.function(Symbol);
  if (!Source)
    return;
  StallTimer Stall(Stats.MutatorStallNanos);
  CompileInProgressGuard Guard(CompilationInProgress);

  CompileOutcome Outcome;
  Outcome.Task.Symbol = std::string(Symbol);
  Outcome.Task.TaskKind = CompileTask::Kind::Osr;
  Outcome.Task.OsrHeaderBlockId = HeaderBlockId;
  std::unique_ptr<ir::Function> Skeleton =
      opt::buildOsrVariant(*Source, HeaderBlockId);
  if (!Skeleton) {
    Outcome.Error = "osr header unavailable";
    publishOutcome(std::move(Outcome));
    return;
  }
  opt::PassContext Ctx = TheCompiler.passContext();
  Ctx.Blacklist = &Blacklist;
  try {
    Outcome.Code =
        TheCompiler.compile(*Skeleton, M, Profiles, Outcome.Stats, Ctx);
  } catch (const std::exception &E) {
    Outcome.Code = nullptr;
    Outcome.Error = E.what();
    Outcome.Exception = true;
  } catch (...) {
    Outcome.Code = nullptr;
    Outcome.Error = "unknown compiler exception";
    Outcome.Exception = true;
  }
  publishOutcome(std::move(Outcome));
}

void JitRuntime::compileOnMutator(std::string_view Symbol) {
  const ir::Function *Source = M.function(Symbol);
  if (!Source)
    return;
  StallTimer Stall(Stats.MutatorStallNanos);
  CompileInProgressGuard Guard(CompilationInProgress);

  CompileOutcome Outcome;
  Outcome.Task.Symbol = std::string(Symbol);
  // Mutator compiles read the live blacklist — at this point it equals any
  // snapshot a deterministic-mode enqueue would have taken here.
  opt::PassContext Ctx = TheCompiler.passContext();
  Ctx.Blacklist = &Blacklist;
  try {
    Outcome.Code =
        TheCompiler.compile(*Source, M, Profiles, Outcome.Stats, Ctx);
  } catch (const std::exception &E) {
    Outcome.Code = nullptr;
    Outcome.Error = E.what();
    Outcome.Exception = true;
  } catch (...) {
    Outcome.Code = nullptr;
    Outcome.Error = "unknown compiler exception";
    Outcome.Exception = true;
  }
  publishOutcome(std::move(Outcome));
}

void JitRuntime::publishBatch(std::vector<CompileOutcome> Batch) {
  for (CompileOutcome &Outcome : Batch) {
    ++ConsumedOutcomes;
    publishOutcome(std::move(Outcome));
  }
}

void JitRuntime::publishOutcome(CompileOutcome &&Outcome) {
  if (Outcome.Task.TaskKind == CompileTask::Kind::Osr) {
    publishOsrOutcome(std::move(Outcome));
    return;
  }
  MethodState &State = stateOf(Outcome.Task.Symbol);
  State.InFlight = false;
  if (State.Compiled) {
    // Code for this method was already installed (e.g. a forced
    // compileNow while the task was in flight). Overwriting the cache
    // entry would destroy a Function the interpreter may be executing;
    // record the stale outcome and discard it.
    ++Stats.StaleOutcomesDiscarded;
    return;
  }
  if (!Outcome.Code) {
    recordBailout(State, Outcome.Exception, /*Permanent=*/false);
    return;
  }
  // Verify unconditionally — never behind assert/NDEBUG: installing
  // unverified code in a Release build is how miscompiles escape. Invalid
  // code is a (permanent) bailout; the method stays interpreted. Frame
  // states get the same treatment: compiled functions are not module
  // members, so verifyModule never sees them — this is the only gate
  // between a dangling deopt recipe and the interpreter.
  if (!ir::verifyFunction(*Outcome.Code).empty() ||
      !ir::verifyFrameStates(*Outcome.Code, M).empty()) {
    ++Stats.VerifyFailures;
    recordBailout(State, /*WasException=*/false, /*Permanent=*/true);
    return;
  }

  CompilationRecord Record;
  Record.Symbol = Outcome.Task.Symbol;
  Record.Stats = Outcome.Stats;
  Record.Stats.CodeSize = Outcome.Code->instructionCount();
  Record.CompileIndex = Compilations.size();
  Record.Attempt = State.FailedAttempts + 1;
  Record.IRFingerprint = fnv1a(ir::printFunction(*Outcome.Code));
  Stats.GuardsEmitted += Record.Stats.GuardsEmitted;
  Compilations.push_back(std::move(Record));
  CodeCache[Outcome.Task.Symbol] = std::move(Outcome.Code);
  State.Compiled = true;
  if (State.DeoptPending) {
    State.DeoptPending = false;
    ++Stats.RecompilesAfterDeopt;
  }
}

void JitRuntime::publishOsrOutcome(CompileOutcome &&Outcome) {
  std::pair<std::string, unsigned> Key = {Outcome.Task.Symbol,
                                          Outcome.Task.OsrHeaderBlockId};
  OsrState &State = OsrStates[Key];
  State.InFlight = false;
  uint64_t Count = 0;
  if (const profile::MethodProfile *P = Profiles.find(Outcome.Task.Symbol)) {
    auto It = P->Backedges.find(Outcome.Task.OsrHeaderBlockId);
    if (It != P->Backedges.end())
      Count = It->second;
  }
  if (State.Compiled) {
    ++Stats.StaleOutcomesDiscarded;
    return;
  }
  if (!Outcome.Code) {
    recordOsrBailout(State, Count, Outcome.Exception, /*Permanent=*/false);
    return;
  }
  // Same unconditional verification gate as method code, plus the OSR
  // contract: entry descriptors must resolve against the baseline at the
  // anchored header, or the interpreter's frame transfer would read values
  // the interpreted frame does not hold.
  if (!ir::verifyFunction(*Outcome.Code).empty() ||
      !ir::verifyFrameStates(*Outcome.Code, M).empty() ||
      !ir::verifyOsrEntries(*Outcome.Code, M).empty()) {
    ++Stats.VerifyFailures;
    recordOsrBailout(State, Count, /*WasException=*/false, /*Permanent=*/true);
    return;
  }

  CompilationRecord Record;
  Record.Symbol = Outcome.Task.dedupKey(); // "method@osr<header>".
  Record.Stats = Outcome.Stats;
  Record.Stats.CodeSize = Outcome.Code->instructionCount();
  Record.CompileIndex = Compilations.size();
  Record.Attempt = State.FailedAttempts + 1;
  Record.IRFingerprint = fnv1a(ir::printFunction(*Outcome.Code));
  Stats.GuardsEmitted += Record.Stats.GuardsEmitted;
  Compilations.push_back(std::move(Record));
  OsrCache[Key] = std::move(Outcome.Code);
  State.Compiled = true;
  ++Stats.OsrInstalls;
}

void JitRuntime::recordOsrBailout(OsrState &State, uint64_t BackedgeCount,
                                  bool WasException, bool Permanent) {
  ++Stats.Bailouts;
  if (WasException)
    ++Stats.CompileExceptions;
  ++State.FailedAttempts;
  if (Permanent || State.FailedAttempts >= Config.MaxCompileAttempts) {
    State.DoNotCompile = true;
    return;
  }
  uint64_t Base = State.NextAttemptAt > BackedgeCount ? State.NextAttemptAt
                                                      : BackedgeCount;
  if (Base == 0)
    Base = Config.OsrBackedgeThreshold != 0 ? Config.OsrBackedgeThreshold : 1;
  uint64_t Factor =
      Config.BailoutBackoffFactor > 1 ? Config.BailoutBackoffFactor : 2;
  State.NextAttemptAt = Base * Factor;
}

void JitRuntime::recordBailout(MethodState &State, bool WasException,
                               bool Permanent) {
  ++Stats.Bailouts;
  if (WasException)
    ++Stats.CompileExceptions;
  ++State.FailedAttempts;
  if (Permanent || State.FailedAttempts >= Config.MaxCompileAttempts) {
    if (!State.DoNotCompile) {
      State.DoNotCompile = true;
      ++Stats.BlacklistedMethods;
    }
    return;
  }
  // Exponential backoff: the method must earn its next attempt instead of
  // re-running the pipeline on every subsequent invocation.
  uint64_t Base = State.NextAttemptAt > State.Hotness ? State.NextAttemptAt
                                                      : State.Hotness;
  uint64_t Factor = Config.BailoutBackoffFactor > 1
                        ? Config.BailoutBackoffFactor
                        : 2;
  State.NextAttemptAt = Base * Factor;
}

void JitRuntime::onDeopt(std::string_view Method,
                         const ir::DeoptInst &Deopt) {
  ++Stats.GuardFailures;
  const ir::FrameState &FS = Deopt.frameState();
  // Track the failed speculation per (method, baseline callsite). At the
  // cap, blacklist it: the recompile below (and every later one) leaves
  // the site as a plain virtual call, so the method converges to a
  // guard-free body instead of deopt-looping on a lying profile.
  unsigned &Failures =
      SpeculationFailures[{std::string(Method), FS.ResumePoint}];
  ++Failures;
  if (Failures >= Config.MaxSpeculationFailures &&
      !Blacklist.contains(Method, FS.ResumePoint)) {
    Blacklist.add(Method, FS.ResumePoint);
    ++Stats.SpeculationsBlacklisted;
    // The blacklist feeds future compilations; memoized compile work from
    // before this entry existed must not be replayed.
    if (CompileCache *Cache = TheCompiler.compileCache())
      Cache->invalidateForRuntimeEvent();
  }
  invalidate(Method);
}

void JitRuntime::invalidate(std::string_view Symbol) {
  // Retire, never destroy: the deoptimizing interpreter frames up the C++
  // stack are still executing this Function. Publication stays write-once
  // (PR 3's idempotence rules): the cache entry is removed and the epoch
  // bumped; nothing ever mutates an installed body in place.
  bool RetiredMethod = false;
  auto It = CodeCache.find(Symbol);
  if (It != CodeCache.end()) {
    RetiredCode.push_back(std::move(It->second));
    CodeCache.erase(It);
    ++Stats.Invalidations;
    RetiredMethod = true;
  }
  // OSR variants of the method embed the same failed speculation (they are
  // compiled from the same baseline against the same profiles), so a deopt
  // retires them alongside the method body — including when the deopt came
  // *from* an OSR body of a method that was never method-compiled. Their
  // states reset to Compiled=false; the loop is still hot, so the next
  // backedge crossing re-requests against the updated blacklist.
  bool RetiredOsr = false;
  for (auto OIt = OsrCache.lower_bound({std::string(Symbol), 0});
       OIt != OsrCache.end() && OIt->first.first == Symbol;) {
    RetiredCode.push_back(std::move(OIt->second));
    OIt = OsrCache.erase(OIt);
    ++Stats.OsrInvalidations;
    RetiredOsr = true;
  }
  if (RetiredOsr)
    for (auto SIt = OsrStates.lower_bound({std::string(Symbol), 0});
         SIt != OsrStates.end() && SIt->first.first == Symbol; ++SIt)
      SIt->second.Compiled = false;
  if (!RetiredMethod && !RetiredOsr)
    return; // Already invalidated (e.g. repeated deopts of retired code).
  ++CodeEpoch;
  // Code-epoch bump: flush memoized compile work along with the code.
  if (CompileCache *Cache = TheCompiler.compileCache())
    Cache->invalidateForRuntimeEvent();
  if (!RetiredMethod)
    return; // OSR-only retire: nothing method-level to recompile.

  MethodState &State = stateOf(Symbol);
  State.Compiled = false;
  State.DeoptPending = true;
  // The method is still hot — request the recompile immediately rather
  // than re-warming from zero. If an async task is already in flight its
  // outcome will install normally (State.Compiled is false again); a
  // pre-invalidation snapshot may re-speculate once, after which the
  // failure counter above retires the speculation for good.
  if (!State.InFlight && !State.DoNotCompile && !CompilationInProgress)
    requestCompile(Symbol, State);
}

void JitRuntime::drainCompilations() {
  if (!Pool)
    return;
  StallTimer Stall(Stats.MutatorStallNanos);
  publishBatch(Pool->waitUntilDrained());
}

void JitRuntime::compileNow(std::string_view Symbol) {
  if (CodeCache.count(Symbol))
    return;
  // Refuse while a background compile of the same symbol is in flight:
  // compiling here as well would race two publications of one method
  // (the worker's later outcome is dropped as stale, but the forced
  // compile would double-count work the caller did not ask for).
  if (stateOf(Symbol).InFlight)
    return;
  compileOnMutator(Symbol);
}

const ir::Function *
JitRuntime::installedOsrVariant(std::string_view Method,
                                unsigned HeaderBlockId) const {
  auto It = OsrCache.find({std::string(Method), HeaderBlockId});
  return It == OsrCache.end() ? nullptr : It->second.get();
}

interp::ExecResult JitRuntime::runMain() {
  return runMain(interp::ExecLimits());
}

interp::ExecResult JitRuntime::runMain(const interp::ExecLimits &Limits) {
  interp::Interpreter Interp(M, *this, interp::CostModel(), Limits);
  return Interp.run("main");
}

uint64_t JitRuntime::installedCodeSize() const {
  uint64_t Total = 0;
  for (const auto &[Symbol, F] : CodeCache)
    Total += F->instructionCount();
  return Total;
}

double JitRuntime::effectiveCycles(const interp::ExecResult &R) const {
  double Pressure = interp::CostModel::icachePressure(installedCodeSize());
  return static_cast<double>(R.InterpretedCycles) +
         static_cast<double>(R.CompiledCycles) * Pressure;
}
