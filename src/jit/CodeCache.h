//===- jit/CodeCache.h - Bounded code cache with eviction -------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The installed-code half of the runtime's code lifecycle (DESIGN.md §12).
/// PR 4 introduced retire-on-deopt (graveyard + epoch bump) and PR 6 added
/// OSR variants; both kept the actual cache maps, the graveyard, and the
/// epoch counter inlined in JitRuntime. This class extracts them into one
/// owner and generalizes retirement into a full admit/retire/re-tier
/// lifecycle under an optional |ir| budget:
///
///  * **Ownership** — every installed method body and OSR variant lives
///    here, keyed by symbol (methods) or (symbol, baseline header block id)
///    (OSR variants). Publication stays write-once: entries are never
///    mutated in place, and removal of any kind — deopt invalidation,
///    budget eviction, forced eviction — *retires* the body to a graveyard
///    that survives until runtime destruction, because interpreter C++
///    frames up the stack may still be executing it.
///
///  * **Budget** — when `Budget > 0`, the summed instruction count of all
///    installed entries (methods *and* OSR variants) never exceeds it.
///    Installs that would overflow first evict cold entries; a body larger
///    than the whole budget is rejected outright (the runtime turns that
///    into a permanent bailout). Eviction is transactional: victims are
///    chosen before anything is retired, so a rejected install — e.g. when
///    pinned entries block — evicts nothing.
///
///  * **Eviction** — coldest-first by decayed heat: every mutator touch
///    (method resolve, OSR entry) heats an entry, `decayHeat()` halves all
///    heat, and the victim is the minimum (heat, install sequence) — i.e.
///    the coldest entry, oldest first on ties. Entries whose symbol is
///    pinned (a compilation of the symbol is in flight) are never victims.
///    Each eviction batch bumps the code epoch exactly like a deopt retire,
///    so stale resolve fast paths cannot survive; unlike a deopt retire it
///    does NOT flush the compiler's memoization cache — eviction changes no
///    assumption any cached compile work depends on, and flushing would
///    defeat re-tier memoization (the whole point of evict -> reheat ->
///    recompile being cheap).
///
/// Mutator-owned like the rest of the runtime state: publication, eviction
/// and lookups all happen on the mutator at safepoints, so no locking.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_JIT_CODECACHE_H
#define INCLINE_JIT_CODECACHE_H

#include "ir/Function.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace incline::jit {

/// Lifecycle counters of the code cache — the one authoritative place where
/// installs, retirements and occupancy are counted (minioo --stats prints
/// this as the `code-cache` line).
struct CodeCacheStats {
  uint64_t MethodInstalls = 0; ///< Method bodies ever installed.
  uint64_t OsrInstalls = 0;    ///< OSR variants ever installed.
  uint64_t Evictions = 0;      ///< Method bodies retired by budget/force.
  uint64_t OsrEvictions = 0;   ///< OSR variants retired by budget/force.
  uint64_t Invalidations = 0;  ///< Method bodies retired by a deopt.
  uint64_t OsrInvalidations = 0; ///< OSR variants retired by a deopt.
  /// Installs rejected by the budget: the body alone exceeds the whole
  /// budget, or every resident byte is pinned by in-flight compilations.
  uint64_t AdmissionRejections = 0;
  uint64_t DecayTicks = 0;     ///< decayHeat() calls (one per decay epoch).
  uint64_t LiveBytes = 0;      ///< |ir| currently installed (methods + OSR).
  uint64_t PeakLiveBytes = 0;  ///< High-water mark of LiveBytes.
  uint64_t Budget = 0;         ///< Configured bound; 0 = unbounded.
};

/// Owner of installed compiled code (method bodies and OSR variants), the
/// retired-code graveyard, and the code epoch. See file comment.
class CodeCache {
public:
  /// Header value marking a method-body key in eviction/retire summaries.
  static constexpr unsigned MethodEntry = ~0u;

  /// One retired-or-evicted entry, reported back to the runtime so it can
  /// reset the matching tier state (re-warm counters, clear Compiled bits).
  struct Key {
    std::string Symbol;
    unsigned Header = MethodEntry; ///< MethodEntry = the method body.

    bool isMethod() const { return Header == MethodEntry; }
  };

  enum class InstallStatus : uint8_t {
    Installed,
    /// The body alone exceeds the whole budget; it can never fit. The
    /// runtime records a permanent bailout (do-not-compile).
    RejectedTooBig,
    /// The body would fit but the unpinned victims cannot free enough
    /// room (the rest is pinned by in-flight compilations). Transient; the
    /// runtime backs off and retries. Eviction is transactional, so a
    /// rejected install retires nothing — Evicted is always empty here.
    RejectedPinned,
  };

  struct InstallOutcome {
    InstallStatus Status = InstallStatus::Installed;
    /// Entries evicted to make room, coldest first.
    std::vector<Key> Evicted;
  };

  explicit CodeCache(uint64_t Budget = 0) { Stats.Budget = Budget; }

  //===--------------------------------------------------------------------===//
  // Lookup.
  //===--------------------------------------------------------------------===//

  /// Installed body of \p Symbol or null. Heats the entry: this is the
  /// resolve fast path, so every compiled-tier dispatch is one touch.
  const ir::Function *lookupMethod(std::string_view Symbol);

  /// Installed OSR variant of (\p Symbol, \p Header) or null, heated on
  /// hit — an OSR entry is the loop-level analogue of a dispatch.
  const ir::Function *lookupOsr(std::string_view Symbol, unsigned Header);

  /// Read-only, heat-neutral inspection (tests, stats).
  const ir::Function *installedMethod(std::string_view Symbol) const;
  const ir::Function *installedOsr(std::string_view Symbol,
                                   unsigned Header) const;

  //===--------------------------------------------------------------------===//
  // Install / retire.
  //===--------------------------------------------------------------------===//

  /// Installs \p Code as \p Symbol's method body, evicting cold unpinned
  /// entries as needed. The symbol must not already have a body installed
  /// (the runtime's publish discipline guarantees it; asserted — a slip in
  /// Release retires the old body instead of destroying it).
  InstallOutcome installMethod(std::string_view Symbol,
                               std::unique_ptr<ir::Function> Code);

  /// Installs \p Code as the OSR variant of (\p Symbol, \p Header).
  InstallOutcome installOsr(std::string_view Symbol, unsigned Header,
                            std::unique_ptr<ir::Function> Code);

  /// Deopt-driven invalidation: retires \p Symbol's method body and every
  /// OSR variant of it to the graveyard and bumps the epoch once if
  /// anything was retired. Ignores pins — a deopt is ground truth; the
  /// in-flight compilation's outcome will install against fresh state.
  /// Returns the retired keys.
  std::vector<Key> invalidate(std::string_view Symbol);

  /// Forced eviction (chaos hook, tests): retires \p Symbol's method body
  /// and OSR variants exactly like budget eviction — counted as evictions,
  /// epoch bumped — but *respects pins* (an in-flight symbol is untouched).
  std::vector<Key> evict(std::string_view Symbol);

  //===--------------------------------------------------------------------===//
  // Pinning, heat, epoch.
  //===--------------------------------------------------------------------===//

  /// Pins \p Symbol while a compilation of it is in flight: none of its
  /// entries can be a budget-eviction victim until the matching unpin.
  /// Counted, so overlapping method + OSR tasks nest.
  void pin(std::string_view Symbol);
  void unpin(std::string_view Symbol);
  bool pinned(std::string_view Symbol) const;

  /// Halves every entry's heat (one decay epoch). Entries that were never
  /// touched since the last decay converge to 0 and become eviction
  /// victims in install-sequence order.
  void decayHeat();

  /// Monotone counter bumped by every retirement batch (invalidation or
  /// eviction). See JitRuntime::codeEpoch().
  uint64_t epoch() const { return Epoch; }

  /// Total |ir| of installed *method* bodies — the i-cache pressure input
  /// (kept OSR-exclusive for continuity with the pre-lifecycle harness
  /// numbers; OSR variants share the method's working set).
  uint64_t methodBytes() const { return MethodBytes; }
  /// Total |ir| of everything installed — what the budget bounds.
  uint64_t liveBytes() const { return Stats.LiveBytes; }
  uint64_t budget() const { return Stats.Budget; }

  const CodeCacheStats &stats() const { return Stats; }

private:
  struct Entry {
    std::unique_ptr<ir::Function> Code;
    uint64_t Size = 0; ///< instructionCount() at install time.
    uint64_t Heat = 0;
    uint64_t InstallSeq = 0; ///< Tie-break: older entries evict first.
  };

  /// Moves the body to the graveyard and adjusts occupancy. Epoch is the
  /// caller's responsibility (one bump per batch).
  void retireEntry(Entry &E, bool IsMethod);
  /// Evicts cold unpinned entries until \p NeedBytes fit under the budget.
  /// Transactional: victims are selected before anything is retired, so on
  /// success the victims are appended to \p Out (coldest first) and on
  /// failure (pinned entries block) *nothing* was evicted.
  bool makeRoom(uint64_t NeedBytes, std::vector<Key> &Out);
  void bumpLive(uint64_t Bytes);

  std::map<std::string, Entry, std::less<>> Methods;
  std::map<std::pair<std::string, unsigned>, Entry> OsrVariants;
  std::map<std::string, unsigned, std::less<>> Pins;

  /// Retired code parked until destruction: interpreter frames may still
  /// be executing these bodies (PR 4's write-once publish contract).
  std::vector<std::unique_ptr<ir::Function>> Graveyard;

  CodeCacheStats Stats;
  uint64_t MethodBytes = 0;
  uint64_t Epoch = 0;
  uint64_t NextInstallSeq = 0;
};

} // namespace incline::jit

#endif // INCLINE_JIT_CODECACHE_H
