//===- jit/JitRuntime.h - Tiered execution runtime -------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM substitute: methods start in the profiling interpreter; when a
/// method's invocation count crosses the compile threshold a compilation is
/// requested — the online compilation stream of §II's problem statement.
/// How the request is served is the execution mode:
///
///  * `Sync` — compiled at the invocation, on the mutator, stalling it for
///    the full pipeline (the original behaviour; still the default).
///  * `Async` — enqueued on a bounded hotness-priority CompileQueue and
///    compiled by a CompileWorkerPool while the mutator keeps executing
///    the method interpreted; finished code is published into the code
///    cache at safepoints (function entries and block transitions). This
///    is how HotSpot and Graal actually run.
///  * `Deterministic` — same queue and worker threads, but the mutator
///    blocks at the enqueue safepoint until the task is compiled and
///    installed, in enqueue order. Because every compile sees exactly the
///    profile state a synchronous compile would have seen, the
///    `compilations()` stream and the program output are bit-identical to
///    Sync mode — the replay mode bench figures and differential tests
///    rely on.
///
/// Methods whose compilation bails out (compiler declined, threw, or
/// produced code that fails IR verification) stay interpreted and back off
/// exponentially; repeated failure blacklists the method (do-not-compile)
/// instead of re-running the pipeline on every invocation.
///
/// The runtime tracks installed code size; the benchmark harness combines
/// it with the cost model's i-cache pressure term to produce effective
/// cycles, reproducing the paper's code-size/performance trade-off.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_JIT_JITRUNTIME_H
#define INCLINE_JIT_JITRUNTIME_H

#include "interp/DecodedBody.h"
#include "interp/Interpreter.h"
#include "jit/CodeCache.h"
#include "jit/Compiler.h"
#include "opt/OsrPlan.h"
#include "opt/SpeculativeDevirt.h"
#include "profile/ProfileData.h"
#include "support/Cancellation.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace incline::opt {
class ModuleReachability;
}

namespace incline::jit {

class CompileQueue;
class CompileWorkerPool;
struct CompileOutcome;
struct CompileTask;

/// How compile requests are served (see file comment).
enum class JitMode : uint8_t { Sync, Async, Deterministic };

std::string_view jitModeName(JitMode Mode);

/// The graceful-degradation ladder (DESIGN.md §14). A deadline or resource
/// bailout steps the anchor down one rung — each rung compiles with less
/// ambition, so the next attempt is cheaper — instead of striking toward
/// the blacklist. A stable install at a lower rung may retry one rung up
/// after re-heating.
enum LadderRung : unsigned {
  RungFull = 0,           ///< Full optimization (speculation + inlining).
  RungNoSpeculation = 1,  ///< Speculative devirtualization disabled.
  RungNoInlining = 2,     ///< Baseline: no inlining, scalar opts only.
  RungInterpreterOnly = 3 ///< Give up compiling; stay interpreted.
};

/// Tiering configuration.
struct JitConfig {
  /// Invocations of a method before compilation is requested.
  uint64_t CompileThreshold = 50;
  /// Master switch (off = pure interpretation).
  bool Enabled = true;
  /// How compile requests are served.
  JitMode Mode = JitMode::Sync;
  /// Compile worker threads (Async/Deterministic; clamped to >= 1).
  unsigned Threads = 1;
  /// Bound of the compile queue; a full queue rejects requests
  /// (backpressure) and the mutator retries later.
  size_t QueueCapacity = 64;
  /// After a bailout the re-try threshold multiplies by this factor
  /// (exponential backoff).
  uint64_t BailoutBackoffFactor = 8;
  /// Failed attempts before a method is blacklisted (do-not-compile).
  unsigned MaxCompileAttempts = 3;
  /// Guard failures of one speculation (method + callsite) before it is
  /// blacklisted and the recompile leaves the site as a virtual call, so a
  /// lying profile converges to a guard-free body instead of deopt-looping.
  unsigned MaxSpeculationFailures = 2;
  /// Chaos hook: when set, a guard whose class test passed still takes its
  /// fail edge if this returns true for (method, guard profileId). Failure
  /// is output-neutral by construction (the baseline re-executes the
  /// dispatch), which is exactly what chaos fuzzing asserts.
  std::function<bool(std::string_view, unsigned)> ForceGuardFailure;

  /// Loop-entry on-stack replacement: when on, interpreted bodies report
  /// taken backedges and hot loops tier up mid-frame (see DESIGN.md §11).
  /// Off by default — `Osr = false` must leave every observable (output,
  /// compile stream, stats) exactly as before the feature existed.
  bool Osr = false;
  /// Taken backedges credited to one loop header before an OSR compilation
  /// of that header is requested.
  uint64_t OsrBackedgeThreshold = 100;
  /// Chaos hook: when set, a backedge crossing for (method, header
  /// baseline-block-id, taken-count) that returns true requests the OSR
  /// compilation immediately, ignoring the threshold and backoff. Like
  /// forced guard failures, a forced OSR entry must be output-neutral —
  /// the variant computes exactly what the interpreted loop would have.
  std::function<bool(std::string_view, unsigned, uint64_t)> ForceOsrEntry;

  /// Code-cache |ir| budget covering installed methods AND OSR variants;
  /// 0 = unbounded (the pre-lifecycle behaviour, bit-identical). Installs
  /// that would overflow evict the coldest unpinned entries first (see
  /// CodeCache.h / DESIGN.md §12); evicted methods fall back to the
  /// interpreter, re-warm from zero, and re-tier when hot again.
  uint64_t CodeCacheBudget = 0;
  /// Profile-decay halflife in safepoints; 0 = off (bit-identical to the
  /// pre-decay runtime). Every halflife-many safepoints the runtime halves
  /// all profile counters (invocations, branches, receivers, backedges),
  /// uncompiled hotness, and code-cache heat, then flushes the compiler's
  /// memoization cache — phase changes re-profile and re-speculate instead
  /// of serving stale decisions forever.
  uint64_t ProfileDecayHalflife = 0;
  /// Chaos hook: an invocation of a *compiled* method for which this
  /// returns true forcibly evicts that method (graveyard retire + re-warm),
  /// exercising evict -> reheat -> recompile round trips at schedule-chosen
  /// points. Pinned (in-flight) symbols are left untouched. Like the other
  /// chaos hooks, a forced eviction must be output-neutral: the method just
  /// runs interpreted again until it re-tiers.
  std::function<bool(std::string_view)> ForceEvict;

  /// Which interpreter core executes the frames (fast pre-decoded tables
  /// vs the reference map-frame oracle; see interp/Interpreter.h). Every
  /// observable — output, traps, cycles, profiles, the compile stream's
  /// fingerprint — is identical across cores; only host speed differs.
  interp::InterpOptions Interp;

  // Supervised compilation (DESIGN.md §14): compile deadlines, cooperative
  // cancellation, and the graceful-degradation ladder. With every knob at
  // its default the runtime is bit-identical to the unsupervised one.

  /// Deterministic compile deadline in work units (charged per pass run
  /// from the pass's IR delta — identical across execution modes, so this
  /// clock is legal in `--jit-mode=deterministic`); 0 = off.
  uint64_t CompileDeadlineUnits = 0;
  /// Wall-clock compile deadline in milliseconds; 0 = off. Inherently
  /// nondeterministic — pair with the ladder, not with bit-identity tests.
  uint64_t CompileDeadlineMs = 0;
  /// Per-compile peak IR-node quota (a resource bound, tripping
  /// ResourceExhausted rather than DeadlineExceeded); 0 = off.
  uint64_t CompileNodeQuota = 0;
  /// Graceful-degradation ladder switch: on, deadline/resource bailouts
  /// step the anchor down one rung (Full -> NoSpeculation -> NoInlining ->
  /// InterpreterOnly) with backoff and no blacklist strike; off, they take
  /// the legacy bailout->backoff->blacklist path. Moot while no deadline,
  /// quota, or forced expiry is configured.
  bool DegradeLadder = true;
  /// Chaos hook: when set, a compile request of (symbol, per-anchor attempt
  /// number) for which this returns true gets a token whose work budget is
  /// already as good as spent, so the compile deterministically dies with
  /// DeadlineExceeded at its first checkpoint — driving the ladder at
  /// schedule-chosen points. Output must stay identical (degraded code and
  /// the interpreter compute the same values); the deadline-chaos oracle
  /// stage asserts exactly that.
  std::function<bool(std::string_view, unsigned)> ForceDeadlineExpiry;

  // Minimal-slice compilation (DESIGN.md §15). The compile-side thresholds
  // (--cold-prune) live in the inliner's config; the runtime owns the trap
  // recovery, the per-(method, block) prune blacklist, and tree shaking.

  /// Chaos hook: when set, the pruning pass prunes the colder side of the
  /// branch at (method, branch profileId) whenever this returns true —
  /// regardless of thresholds, sample counts, or whether pruning is even
  /// enabled. A forced prune of a *hot* edge must be output-neutral: the
  /// trap resumes the baseline exactly where the branch would have gone,
  /// which is what the prune-chaos oracle stage asserts. Must be pure
  /// (compile workers call it concurrently).
  std::function<bool(std::string_view, unsigned)> ForceColdBranch;
  /// Whole-module tree shaking: compute CHA/profile-assisted reachability
  /// from the roots below once, share it with every compilation, and skip
  /// compile requests for proven-dead methods. Off by default — `TreeShake
  /// = false` leaves every observable bit-identical to the pre-feature
  /// runtime.
  bool TreeShake = false;
  /// Reachability roots (entry points the host may call directly). Empty
  /// means the single root "main". The harness lists its handler symbols
  /// here; anything *not* rooted and not reachable stays interpreted.
  std::vector<std::string> TreeShakeRoots;
};

/// One installed compilation.
struct CompilationRecord {
  std::string Symbol;
  CompileStats Stats;
  uint64_t CompileIndex = 0; ///< Order of arrival in the compile stream.
  unsigned Attempt = 1;      ///< 1 + bailed-out attempts before this one.
  /// Ladder rung the installed code was compiled at (0 = full). Nonzero
  /// rungs are recorded in the stream fingerprint; rung 0 is omitted so
  /// pre-ladder fingerprints stay byte-identical.
  unsigned Rung = 0;
  /// FNV-1a hash of the installed code's printed IR: two streams with equal
  /// fingerprints installed byte-identical code.
  uint64_t IRFingerprint = 0;
};

/// Deterministic textual digest of a compilation stream: everything the
/// compiler decided (order, symbols, sizes, inlining counts, pass runs,
/// analysis cache behaviour, installed-IR hashes) excluding wall time.
/// Equal digests mean bit-identical streams; tests compare Sync vs
/// Deterministic mode with it.
std::string streamFingerprint(const std::vector<CompilationRecord> &Stream);

/// Runtime-wide counters (all mutator-owned).
struct JitRuntimeStats {
  uint64_t CompileRequests = 0;   ///< Threshold crossings that issued a request.
  uint64_t Bailouts = 0;          ///< Requests that did not install code.
  uint64_t CompileExceptions = 0; ///< ... of which the compiler threw.
  uint64_t VerifyFailures = 0;    ///< ... of which IR verification rejected.
  uint64_t BlacklistedMethods = 0; ///< Methods marked do-not-compile.
  uint64_t QueueFullRejections = 0; ///< Requests rejected by backpressure.
  /// Worker outcomes discarded because code for the method was already
  /// installed when they arrived (e.g. compileNow raced an async task).
  uint64_t StaleOutcomesDiscarded = 0;
  /// Wall time the mutator was stalled by compilation: the whole pipeline
  /// in Sync mode, the blocking drain in Deterministic mode, only
  /// verify+publish in Async mode. The quantity bench/compiletime_async
  /// compares across modes.
  uint64_t MutatorStallNanos = 0;

  // Speculative devirtualization / deoptimization (see opt/SpeculativeDevirt
  // and DESIGN.md §9).
  uint64_t GuardsEmitted = 0;   ///< Guards in all installed compilations.
  uint64_t GuardFailures = 0;   ///< Deoptimizations taken (guard fail edges).
  uint64_t Invalidations = 0;   ///< Installed bodies retired after a deopt.
  uint64_t RecompilesAfterDeopt = 0; ///< Successful re-installs post-deopt.
  uint64_t SpeculationsBlacklisted = 0; ///< Sites that hit the failure cap.

  // Loop-entry OSR (see DESIGN.md §11). All zero when Config.Osr is off.
  uint64_t OsrCompileRequests = 0; ///< Threshold/forced OSR compile requests.
  uint64_t OsrInstalls = 0;        ///< OSR variants installed.
  uint64_t OsrEntries = 0;         ///< Frame transfers into OSR code taken.
  uint64_t OsrInvalidations = 0;   ///< OSR variants retired by a deopt.

  // Supervised compilation (see DESIGN.md §14). All zero while no
  // deadline/quota/forced expiry is configured and nothing is cancelled.
  uint64_t DeadlineBailouts = 0;  ///< Compiles killed by a deadline.
  uint64_t ResourceBailouts = 0;  ///< Compiles killed by quota/bad_alloc.
  uint64_t CompilesCancelled = 0; ///< Tasks cancelled (deopt/evict/shutdown).
  uint64_t LadderStepDowns = 0;   ///< Anchor rung decrements taken.
  uint64_t LadderUpgradeAttempts = 0; ///< Re-heated retries one rung up.
  uint64_t LadderUpgrades = 0;        ///< ... of which installed.
  uint64_t LadderInterpreterOnly = 0; ///< Anchors that hit the bottom rung.

  // Minimal-slice compilation (DESIGN.md §15). All zero while cold-branch
  // pruning and tree shaking are off and no prune is forced.
  uint64_t BranchesPruned = 0;    ///< Uncommon traps in installed code.
  uint64_t ColdBranchDeopts = 0;  ///< Pruned branches actually taken.
  uint64_t PrunesBlacklisted = 0; ///< (method, block) prunes retired.
  uint64_t MethodsShaken = 0;     ///< Module methods proven unreachable.
  uint64_t ShakenCompileSkips = 0; ///< Compile requests skipped as dead.
};

/// The tiered runtime. Implements the interpreter's ExecutionEnv: hotness
/// counting on invocation, code-cache lookups on resolution, profile
/// recording for the interpreted tier, compiled-code publication at
/// safepoints.
class JitRuntime : public interp::ExecutionEnv {
public:
  JitRuntime(ir::Module &M, Compiler &TheCompiler,
             JitConfig Config = JitConfig());
  ~JitRuntime() override;

  // ExecutionEnv implementation.
  interp::ResolvedBody resolve(std::string_view Symbol) override;
  void onInvoke(std::string_view Symbol) override;
  void onSafepoint() override;
  profile::ProfileTable *profiles() override { return &Profiles; }
  void onDeopt(std::string_view Method, const ir::DeoptInst &Deopt) override;
  const ir::Function *onOsrEdge(std::string_view Method,
                                const ir::BasicBlock &From,
                                const ir::BasicBlock &To) override;
  bool shouldForceGuardFailure(std::string_view Method,
                               unsigned GuardProfileId) override {
    return Config.ForceGuardFailure &&
           Config.ForceGuardFailure(Method, GuardProfileId);
  }

  /// Runs `main` once under tiered execution. Call repeatedly to simulate
  /// benchmark iterations: hotness and compiled code persist across runs.
  interp::ExecResult runMain();
  /// Same, under explicit execution limits (the fuzzing watchdog budgets
  /// candidate runs against the reference run's step count).
  interp::ExecResult runMain(const interp::ExecLimits &Limits);
  /// Runs an arbitrary entry point once under tiered execution — the
  /// multi-tenant traffic harness drives thousands of per-request handler
  /// invocations through one runtime this way. Tier state (hotness,
  /// compiled code, profiles) persists across calls exactly as it does for
  /// runMain; each call gets a fresh heap.
  interp::ExecResult run(std::string_view Symbol,
                         const std::vector<interp::RtValue> &Args = {},
                         const interp::ExecLimits &Limits =
                             interp::ExecLimits());

  /// Total |ir| of all installed compiled code.
  uint64_t installedCodeSize() const;

  /// Effective cycles of \p R after applying i-cache pressure to its
  /// compiled-tier share (the harness's "wall clock").
  double effectiveCycles(const interp::ExecResult &R) const;

  const std::vector<CompilationRecord> &compilations() const {
    return Compilations;
  }
  const profile::ProfileTable &profileTable() const { return Profiles; }
  /// Runtime counters, returned as a snapshot: the code-lifecycle fields
  /// (installs, invalidations) are counted once, in the code cache, and
  /// merged in here — the historical duplication between runtime-side and
  /// cache-side tallies is gone.
  JitRuntimeStats stats() const;
  /// Lifecycle counters of the code cache (installs, evictions, occupancy,
  /// decay ticks) — the `code-cache` line of minioo --stats.
  const CodeCacheStats &codeCacheStats() const { return Code.stats(); }
  /// The code cache itself (read-only; tests inspect pinning/occupancy).
  const CodeCache &codeCache() const { return Code; }
  /// Mutable access for tests that stage lifecycle states the mutator
  /// cannot reach deterministically (e.g. holding a pin as a still
  /// in-flight compilation would). Production code must go through the
  /// publish/evict paths.
  CodeCache &codeCacheForTest() { return Code; }

  /// Speculations the runtime gave up on (failed >= MaxSpeculationFailures
  /// times); recompiles leave these callsites as virtual calls.
  const opt::SpeculationBlacklist &speculationBlacklist() const {
    return Blacklist;
  }

  /// Cold-branch prunes the runtime gave up on — (method, cold-target
  /// baseline block id) pairs whose uncommon trap fired; recompiles keep
  /// those branches intact.
  const opt::SpeculationBlacklist &pruneBlacklist() const {
    return PruneBlacklist;
  }

  /// The tree-shaking reachability analysis, computed lazily at the first
  /// compile request (the module is immutable at runtime, so it never goes
  /// stale). Null while Config.TreeShake is off or nothing compiled yet.
  const opt::ModuleReachability *reachability() const {
    return Reachability.get();
  }

  /// The installed OSR variant for (\p Method, baseline header block
  /// \p HeaderBlockId), or null. Test/inspection hook; execution reaches
  /// OSR code only through onOsrEdge.
  const ir::Function *installedOsrVariant(std::string_view Method,
                                          unsigned HeaderBlockId) const;

  /// Monotone counter bumped by every retirement batch (deopt invalidation
  /// or eviction). Installed code is never mutated or destroyed in place —
  /// retiring an entry moves it to the code cache's graveyard and bumps
  /// this epoch, so readers (including the C++ frames of the deoptimizing
  /// interpreter itself) keep a stable view while new resolves see the
  /// interpreted tier again.
  uint64_t codeEpoch() const { return Code.epoch(); }

  /// Blocks until every queued or in-flight background compilation has
  /// been published (or recorded as a bailout). No-op in Sync mode. Useful
  /// for tests and for end-of-run reporting in Async mode.
  void drainCompilations();

  /// Forces a synchronous compilation attempt of \p Symbol now, ignoring
  /// hotness and backoff (used by tests). Bailouts are still recorded.
  /// No-op when the method is already compiled or a background compile of
  /// it is in flight (racing the worker would double-publish one method).
  void compileNow(std::string_view Symbol);

  /// Forcibly evicts \p Symbol's installed code (method body and OSR
  /// variants) through the normal eviction path: graveyard retire, epoch
  /// bump, tier state reset to re-warm from zero. Respects pins — a no-op
  /// while a compilation of the symbol is in flight. Mutator-only (tests
  /// and the ForceEvict chaos hook call it between/at safepoints).
  void evictNow(std::string_view Symbol);

private:
  /// Everything the runtime knows about one compilation anchor's tier
  /// state — the *same* struct serves method anchors (keyed by symbol; one
  /// map lookup per invocation covers the not-yet-compiled fast path) and
  /// OSR anchors (keyed by (method, baseline header block id); the
  /// backedge count in the profile table plays the Hotness role). The
  /// unification is what lets one publish path and one bailout/backoff
  /// path serve both tiers.
  struct TierState {
    /// Invocation count (method anchors); unused for OSR anchors, whose
    /// trigger counter is the profile table's backedge count.
    uint64_t Hotness = 0;
    /// Trigger count at which the next compile attempt fires. For method
    /// anchors stateOf() seeds it with the compile threshold; for OSR
    /// anchors 0 means "the configured backedge threshold applies".
    uint64_t NextAttemptAt = 0;
    unsigned FailedAttempts = 0;
    bool InFlight = false;     ///< Queued or compiling on a worker.
    bool Compiled = false;     ///< Installed in the code cache.
    bool DoNotCompile = false; ///< Blacklisted after repeated failure.
    /// The method deoptimized and its code was invalidated; the next
    /// successful install counts as a recompile-after-deopt. Method
    /// anchors only.
    bool DeoptPending = false;
    /// Graceful-degradation ladder rung the anchor currently compiles at
    /// (LadderRung; 0 = full optimization). Stepped down by deadline and
    /// resource bailouts, stepped back up by a successful re-heated
    /// upgrade. DESIGN.md §14.
    unsigned Rung = 0;
    /// Compile requests ever issued for this anchor — the deterministic
    /// per-anchor attempt number the ForceDeadlineExpiry chaos schedule
    /// keys on.
    unsigned AttemptNo = 0;
  };
  using MethodState = TierState;
  using OsrState = TierState;

  MethodState &stateOf(std::string_view Symbol);
  /// Requests a compilation of \p Symbol. \p UpgradeToRung >= 0 marks a
  /// re-heated ladder upgrade attempt compiling at that (better) rung while
  /// the anchor's current degraded code stays installed; -1 is a normal
  /// request at the anchor's current rung.
  void requestCompile(std::string_view Symbol, MethodState &State,
                      int UpgradeToRung = -1);
  /// Degraded-rung re-heat (DESIGN.md §14): a method stably installed at a
  /// lower rung keeps counting invocations; once re-heated past the pushed
  /// out threshold it retries one rung up. Mutator-only, from onInvoke.
  void maybeRequestUpgrade(std::string_view Symbol, MethodState &State);
  /// Builds the supervision token for one compile attempt of \p State
  /// (consuming its attempt number), honoring the configured deadlines and
  /// the ForceDeadlineExpiry chaos schedule. Null when the compile needs no
  /// supervision (no budgets configured and no background cancellation
  /// possible).
  std::shared_ptr<support::CancellationToken>
  makeCompileToken(std::string_view Symbol, TierState &State);
  /// Cooperatively cancels all of \p Symbol's queued or running compiles
  /// (the work's result is already retired): queued tasks unwind their
  /// flight state here; running tasks surface later as Cancelled outcomes.
  void cancelInFlight(std::string_view Symbol);
  /// The deadline/resource half of the bailout path with the ladder on:
  /// step the anchor down one rung with backoff — no FailedAttempts strike,
  /// no blacklist; the bottom rung retires the anchor to the interpreter.
  void stepDownLadder(TierState &State, uint64_t TriggerCount,
                      uint64_t FallbackThreshold, bool IsMethodAnchor,
                      bool IsDeadline);
  /// Requests the OSR compilation of (\p Symbol, \p HeaderBlockId) per the
  /// configured mode. Mutator-only; called from onOsrEdge.
  void requestOsrCompile(std::string_view Symbol, unsigned HeaderBlockId,
                         OsrState &State, uint64_t BackedgeCount);
  /// One synchronous attempt on the mutator (Sync mode, compileNow, and
  /// OSR requests in Sync mode — OSR tasks carry the header block id).
  void compileOnMutator(const CompileTask &TaskShape);
  /// Verifies, installs or records a bailout — the single publish point
  /// into the code cache, serving method and OSR outcomes alike.
  /// Mutator-only.
  void publishOutcome(CompileOutcome &&Outcome);
  void publishBatch(std::vector<CompileOutcome> Batch);
  /// Shared bailout/backoff bookkeeping. \p TriggerCount is the anchor's
  /// current trigger counter (hotness / backedge count) and
  /// \p FallbackThreshold its configured threshold (used when no backoff
  /// base exists yet); \p IsMethodAnchor gates the method-blacklist
  /// counter.
  void recordBailout(TierState &State, uint64_t TriggerCount,
                     uint64_t FallbackThreshold, bool IsMethodAnchor,
                     bool WasException, bool Permanent);
  /// Backoff without a FailedAttempts strike: pushes NextAttemptAt out
  /// exponentially so the anchor earns its next attempt. recordBailout's
  /// non-permanent tail, also used directly for transient pin-contention
  /// rejections, which must never count toward the blacklist.
  void applyBackoff(TierState &State, uint64_t TriggerCount,
                    uint64_t FallbackThreshold, bool IsMethodAnchor);
  /// Backedge-credit plan for \p Symbol's baseline, computed on first use.
  /// The module is immutable at runtime, so the plan never goes stale.
  const opt::OsrPlan &osrPlanFor(std::string_view Symbol);
  /// Computes (once) and returns the tree-shaking reachability analysis;
  /// null while Config.TreeShake is off. Mutator-only — workers receive the
  /// result through their task's shared_ptr, never call this.
  std::shared_ptr<const opt::ModuleReachability> ensureReachability();
  /// Retires \p Symbol's installed code (graveyard, epoch bump) and
  /// requests a recompile. Mutator-only; called from onDeopt, which runs at
  /// the deoptimization point — a safepoint by definition (the interpreter
  /// is between instructions, no publication is concurrent).
  void invalidate(std::string_view Symbol);
  /// Resets tier state for entries the code cache retired by *eviction*
  /// (budget pressure or the chaos hook): evicted methods re-warm from
  /// zero, evicted OSR anchors restart their backedge count — eviction is
  /// a resource decision, not a correctness event, so unlike invalidate()
  /// nothing is blacklisted, no recompile is requested, and the compile
  /// cache is not flushed.
  void noteEvicted(const std::vector<CodeCache::Key> &Evicted);
  /// One profile-decay tick (see JitConfig::ProfileDecayHalflife):
  /// exponentially decays profiles, uncompiled hotness, and code-cache
  /// heat, then flushes the compiler's memoization cache.
  void applyProfileDecay();

  ir::Module &M;
  Compiler &TheCompiler;
  JitConfig Config;
  profile::ProfileTable Profiles;

  std::map<std::string, MethodState, std::less<>> Methods;
  /// Installed code, graveyard, epoch, and occupancy accounting — the
  /// code-lifecycle owner (see CodeCache.h).
  CodeCache Code;

  /// Pre-decoded bodies shared across every run() of this runtime, so a
  /// function is decoded once per lifetime, not once per request. Keyed by
  /// Function::uniqueId(); the code-cache graveyard keeps retired functions
  /// alive until runtime destruction, so entries never dangle. Mutator-only,
  /// like all tier state.
  interp::DecodedCache DecodedBodies;

  /// Interned backedge counter for the hottest (method, header) pair:
  /// onOsrEdge fires on *every* taken edge of OSR-eligible loops, and the
  /// string-keyed methodProfile lookup dominated that path. Invalidated by
  /// profile decay (the epoch check — decay erases zeroed entries) exactly
  /// like the interpreter's interned handles; noteEvicted only zeroes
  /// counters in place, so the pointer survives eviction.
  std::string OsrMemoMethod;
  unsigned OsrMemoHeader = 0;
  uint64_t *OsrMemoCount = nullptr;
  uint64_t OsrMemoEpoch = 0;

  /// Loop-entry OSR state (all empty while Config.Osr is off).
  std::map<std::string, opt::OsrPlan, std::less<>> OsrPlans;
  std::map<std::pair<std::string, unsigned>, OsrState> OsrStates;
  std::vector<CompilationRecord> Compilations;
  JitRuntimeStats Stats;
  bool CompilationInProgress = false;
  /// Safepoints since the last decay tick (ProfileDecayHalflife != 0).
  uint64_t SafepointsSinceDecay = 0;

  /// Live speculation-failure bookkeeping, keyed by (method, baseline
  /// callsite profileId — the frame state's resume point).
  std::map<std::pair<std::string, unsigned>, unsigned> SpeculationFailures;
  opt::SpeculationBlacklist Blacklist;
  /// Retired cold-branch prunes, keyed by (method, cold-target baseline
  /// block id). One fired trap retires the prune for good — a trap means
  /// the profile lied about the branch, and unlike a speculation guard the
  /// branch costs nothing to keep.
  opt::SpeculationBlacklist PruneBlacklist;
  /// Tree-shaking reachability, computed once at the first compile request
  /// and shared by-const-pointer with every compilation (workers hold the
  /// shared_ptr through their task). Null while Config.TreeShake is off.
  std::shared_ptr<const opt::ModuleReachability> Reachability;

  /// Background machinery (Async/Deterministic only). Queue is declared
  /// before Pool so the pool (which references the queue from its worker
  /// threads) is destroyed — and its threads joined — first.
  std::unique_ptr<CompileQueue> Queue;
  std::unique_ptr<CompileWorkerPool> Pool;
  /// Outcomes already consumed from the pool; compared against the pool's
  /// lock-free delivered counter so safepoint polls are one atomic load
  /// when nothing new finished.
  uint64_t ConsumedOutcomes = 0;
};

} // namespace incline::jit

#endif // INCLINE_JIT_JITRUNTIME_H
