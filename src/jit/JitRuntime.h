//===- jit/JitRuntime.h - Tiered execution runtime -------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM substitute: methods start in the profiling interpreter; when a
/// method's invocation count crosses the compile threshold it is compiled
/// (synchronously, at the invocation — the online compilation stream of
/// §II's problem statement) and subsequent calls run the compiled body
/// under the cheaper compiled-tier cost model.
///
/// The runtime tracks installed code size; the benchmark harness combines
/// it with the cost model's i-cache pressure term to produce effective
/// cycles, reproducing the paper's code-size/performance trade-off.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_JIT_JITRUNTIME_H
#define INCLINE_JIT_JITRUNTIME_H

#include "interp/Interpreter.h"
#include "jit/Compiler.h"
#include "profile/ProfileData.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace incline::jit {

/// Tiering configuration.
struct JitConfig {
  /// Invocations of a method before it is compiled.
  uint64_t CompileThreshold = 50;
  /// Master switch (off = pure interpretation).
  bool Enabled = true;
};

/// One installed compilation.
struct CompilationRecord {
  std::string Symbol;
  CompileStats Stats;
  uint64_t CompileIndex = 0; ///< Order of arrival in the compile stream.
};

/// The tiered runtime. Implements the interpreter's ExecutionEnv: hotness
/// counting on invocation, code-cache lookups on resolution, profile
/// recording for the interpreted tier.
class JitRuntime : public interp::ExecutionEnv {
public:
  JitRuntime(ir::Module &M, Compiler &TheCompiler,
             JitConfig Config = JitConfig());

  // ExecutionEnv implementation.
  interp::ResolvedBody resolve(std::string_view Symbol) override;
  void onInvoke(std::string_view Symbol) override;
  profile::ProfileTable *profiles() override { return &Profiles; }

  /// Runs `main` once under tiered execution. Call repeatedly to simulate
  /// benchmark iterations: hotness and compiled code persist across runs.
  interp::ExecResult runMain();

  /// Total |ir| of all installed compiled code.
  uint64_t installedCodeSize() const;

  /// Effective cycles of \p R after applying i-cache pressure to its
  /// compiled-tier share (the harness's "wall clock").
  double effectiveCycles(const interp::ExecResult &R) const;

  const std::vector<CompilationRecord> &compilations() const {
    return Compilations;
  }
  const profile::ProfileTable &profileTable() const { return Profiles; }

  /// Forces compilation of \p Symbol now (used by tests).
  void compileNow(std::string_view Symbol);

private:
  ir::Module &M;
  Compiler &TheCompiler;
  JitConfig Config;
  profile::ProfileTable Profiles;

  std::map<std::string, uint64_t, std::less<>> HotnessCounters;
  std::map<std::string, std::unique_ptr<ir::Function>, std::less<>> CodeCache;
  std::vector<CompilationRecord> Compilations;
  bool CompilationInProgress = false;
};

} // namespace incline::jit

#endif // INCLINE_JIT_JITRUNTIME_H
