//===- jit/CodeCache.cpp ------------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "jit/CodeCache.h"

#include <algorithm>
#include <cassert>

using namespace incline;
using namespace incline::jit;

const ir::Function *CodeCache::lookupMethod(std::string_view Symbol) {
  auto It = Methods.find(Symbol);
  if (It == Methods.end())
    return nullptr;
  ++It->second.Heat;
  return It->second.Code.get();
}

const ir::Function *CodeCache::lookupOsr(std::string_view Symbol,
                                         unsigned Header) {
  auto It = OsrVariants.find({std::string(Symbol), Header});
  if (It == OsrVariants.end())
    return nullptr;
  ++It->second.Heat;
  return It->second.Code.get();
}

const ir::Function *CodeCache::installedMethod(std::string_view Symbol) const {
  auto It = Methods.find(Symbol);
  return It == Methods.end() ? nullptr : It->second.Code.get();
}

const ir::Function *CodeCache::installedOsr(std::string_view Symbol,
                                            unsigned Header) const {
  auto It = OsrVariants.find({std::string(Symbol), Header});
  return It == OsrVariants.end() ? nullptr : It->second.Code.get();
}

void CodeCache::pin(std::string_view Symbol) { ++Pins[std::string(Symbol)]; }

void CodeCache::unpin(std::string_view Symbol) {
  auto It = Pins.find(Symbol);
  if (It == Pins.end())
    return;
  if (--It->second == 0)
    Pins.erase(It);
}

bool CodeCache::pinned(std::string_view Symbol) const {
  return Pins.find(Symbol) != Pins.end();
}

void CodeCache::bumpLive(uint64_t Bytes) {
  Stats.LiveBytes += Bytes;
  if (Stats.LiveBytes > Stats.PeakLiveBytes)
    Stats.PeakLiveBytes = Stats.LiveBytes;
}

void CodeCache::retireEntry(Entry &E, bool IsMethod) {
  assert(Stats.LiveBytes >= E.Size && "occupancy accounting out of sync");
  Stats.LiveBytes -= E.Size;
  if (IsMethod) {
    assert(MethodBytes >= E.Size);
    MethodBytes -= E.Size;
  }
  Graveyard.push_back(std::move(E.Code));
}

bool CodeCache::makeRoom(uint64_t NeedBytes, std::vector<Key> &Out) {
  if (Stats.Budget == 0 || Stats.LiveBytes + NeedBytes <= Stats.Budget)
    return true; // Unbounded, or it already fits.
  // Transactional: select the victim set first, retire only once the
  // install is known to fit. A rejected install must evict nobody — the
  // runtime keeps the victims' TierState.Compiled bits in sync with what
  // is actually installed, and a partial eviction followed by a rejection
  // would retire code whose tier state never learns it is gone. Linear
  // scan + sort: the cache holds one entry per compiled method/loop, a
  // small population even under server-scale churn.
  struct Candidate {
    uint64_t Heat;
    uint64_t InstallSeq;
    uint64_t Size;
    Key K;
  };
  std::vector<Candidate> Candidates;
  for (const auto &[Symbol, E] : Methods)
    if (!pinned(Symbol))
      Candidates.push_back({E.Heat, E.InstallSeq, E.Size, {Symbol, MethodEntry}});
  for (const auto &[SymbolHeader, E] : OsrVariants)
    if (!pinned(SymbolHeader.first))
      Candidates.push_back(
          {E.Heat, E.InstallSeq, E.Size,
           {SymbolHeader.first, SymbolHeader.second}});
  // Coldest first, oldest install first on heat ties.
  std::sort(Candidates.begin(), Candidates.end(),
            [](const Candidate &A, const Candidate &B) {
              return A.Heat != B.Heat ? A.Heat < B.Heat
                                      : A.InstallSeq < B.InstallSeq;
            });
  uint64_t Reclaimed = 0;
  size_t NumVictims = 0;
  while (NumVictims != Candidates.size() &&
         Stats.LiveBytes - Reclaimed + NeedBytes > Stats.Budget)
    Reclaimed += Candidates[NumVictims++].Size;
  if (Stats.LiveBytes - Reclaimed + NeedBytes > Stats.Budget)
    return false; // Every remaining resident byte is pinned; evict nothing.
  for (size_t I = 0; I != NumVictims; ++I) {
    Candidate &C = Candidates[I];
    if (C.K.isMethod()) {
      auto It = Methods.find(C.K.Symbol);
      retireEntry(It->second, /*IsMethod=*/true);
      Methods.erase(It);
      ++Stats.Evictions;
    } else {
      auto It = OsrVariants.find({C.K.Symbol, C.K.Header});
      retireEntry(It->second, /*IsMethod=*/false);
      OsrVariants.erase(It);
      ++Stats.OsrEvictions;
    }
    Out.push_back(std::move(C.K));
  }
  return true;
}

CodeCache::InstallOutcome
CodeCache::installMethod(std::string_view Symbol,
                         std::unique_ptr<ir::Function> Code) {
  InstallOutcome Out;
  const uint64_t Size = Code->instructionCount();
  if (Stats.Budget != 0 && Size > Stats.Budget) {
    ++Stats.AdmissionRejections;
    Out.Status = InstallStatus::RejectedTooBig;
    Graveyard.push_back(std::move(Code)); // Nothing references it; parked
                                          // anyway for uniform ownership.
    return Out;
  }
  if (!makeRoom(Size, Out.Evicted)) {
    ++Stats.AdmissionRejections;
    Out.Status = InstallStatus::RejectedPinned;
    Graveyard.push_back(std::move(Code));
    return Out;
  }
  assert(Stats.Budget == 0 || Stats.LiveBytes + Size <= Stats.Budget);
  Entry E;
  E.Code = std::move(Code);
  E.Size = Size;
  E.Heat = 1; // Born warm: a fresh install is by definition hot.
  E.InstallSeq = NextInstallSeq++;
  auto [It, Inserted] = Methods.try_emplace(std::string(Symbol));
  assert(Inserted && "duplicate method install: publish discipline broken");
  if (!Inserted) {
    // Release-build safety net: retire, never destroy — interpreter frames
    // may still be executing the old body.
    retireEntry(It->second, /*IsMethod=*/true);
    ++Epoch;
  }
  It->second = std::move(E);
  MethodBytes += Size;
  bumpLive(Size);
  ++Stats.MethodInstalls;
  if (!Out.Evicted.empty())
    ++Epoch; // One bump per eviction batch, mirroring a deopt retire.
  return Out;
}

CodeCache::InstallOutcome
CodeCache::installOsr(std::string_view Symbol, unsigned Header,
                      std::unique_ptr<ir::Function> Code) {
  InstallOutcome Out;
  const uint64_t Size = Code->instructionCount();
  if (Stats.Budget != 0 && Size > Stats.Budget) {
    ++Stats.AdmissionRejections;
    Out.Status = InstallStatus::RejectedTooBig;
    Graveyard.push_back(std::move(Code));
    return Out;
  }
  if (!makeRoom(Size, Out.Evicted)) {
    ++Stats.AdmissionRejections;
    Out.Status = InstallStatus::RejectedPinned;
    Graveyard.push_back(std::move(Code));
    return Out;
  }
  assert(Stats.Budget == 0 || Stats.LiveBytes + Size <= Stats.Budget);
  Entry E;
  E.Code = std::move(Code);
  E.Size = Size;
  E.Heat = 1;
  E.InstallSeq = NextInstallSeq++;
  auto [It, Inserted] =
      OsrVariants.try_emplace(std::pair(std::string(Symbol), Header));
  assert(Inserted && "duplicate OSR install: publish discipline broken");
  if (!Inserted) {
    retireEntry(It->second, /*IsMethod=*/false);
    ++Epoch;
  }
  It->second = std::move(E);
  bumpLive(Size);
  ++Stats.OsrInstalls;
  if (!Out.Evicted.empty())
    ++Epoch;
  return Out;
}

std::vector<CodeCache::Key> CodeCache::invalidate(std::string_view Symbol) {
  std::vector<Key> Retired;
  auto It = Methods.find(Symbol);
  if (It != Methods.end()) {
    retireEntry(It->second, /*IsMethod=*/true);
    Methods.erase(It);
    ++Stats.Invalidations;
    Retired.push_back({std::string(Symbol), MethodEntry});
  }
  for (auto OIt = OsrVariants.lower_bound({std::string(Symbol), 0});
       OIt != OsrVariants.end() && OIt->first.first == Symbol;) {
    retireEntry(OIt->second, /*IsMethod=*/false);
    ++Stats.OsrInvalidations;
    Retired.push_back({std::string(Symbol), OIt->first.second});
    OIt = OsrVariants.erase(OIt);
  }
  if (!Retired.empty())
    ++Epoch;
  return Retired;
}

std::vector<CodeCache::Key> CodeCache::evict(std::string_view Symbol) {
  std::vector<Key> Evicted;
  if (pinned(Symbol))
    return Evicted;
  auto It = Methods.find(Symbol);
  if (It != Methods.end()) {
    retireEntry(It->second, /*IsMethod=*/true);
    Methods.erase(It);
    ++Stats.Evictions;
    Evicted.push_back({std::string(Symbol), MethodEntry});
  }
  for (auto OIt = OsrVariants.lower_bound({std::string(Symbol), 0});
       OIt != OsrVariants.end() && OIt->first.first == Symbol;) {
    retireEntry(OIt->second, /*IsMethod=*/false);
    ++Stats.OsrEvictions;
    Evicted.push_back({std::string(Symbol), OIt->first.second});
    OIt = OsrVariants.erase(OIt);
  }
  if (!Evicted.empty())
    ++Epoch;
  return Evicted;
}

void CodeCache::decayHeat() {
  for (auto &[Symbol, E] : Methods)
    E.Heat >>= 1;
  for (auto &[Key, E] : OsrVariants)
    E.Heat >>= 1;
  ++Stats.DecayTicks;
}
