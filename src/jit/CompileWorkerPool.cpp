//===- jit/CompileWorkerPool.cpp ----------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "jit/CompileWorkerPool.h"

#include "ir/Module.h"
#include "opt/Analysis.h"
#include "opt/OsrPlan.h"

#include <algorithm>
#include <exception>

using namespace incline;
using namespace incline::jit;

CompileWorkerPool::CompileWorkerPool(CompileQueue &Queue,
                                     Compiler &TheCompiler,
                                     const ir::Module &M, unsigned NumThreads)
    : Queue(Queue), TheCompiler(TheCompiler), M(M) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

CompileWorkerPool::~CompileWorkerPool() { shutdown(); }

void CompileWorkerPool::shutdown() {
  if (ShutDown)
    return;
  ShutDown = true;
  // Tasks still queued at close are never delivered; account them so a
  // drain waiter's target stays reachable instead of hanging forever.
  size_t DroppedNow = Queue.close();
  if (DroppedNow != 0) {
    {
      std::lock_guard<std::mutex> Guard(CompletedLock);
      Dropped.fetch_add(DroppedNow, std::memory_order_release);
    }
    CompletedSignal.notify_all();
  }
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
}

void CompileWorkerPool::workerLoop() {
  while (std::optional<CompileTask> Task = Queue.pop()) {
    CompileOutcome Outcome;
    Outcome.Task = std::move(*Task);

    const ir::Function *Source = M.function(Outcome.Task.Symbol);
    if (!Source) {
      Outcome.Error = "unknown symbol";
      deliver(std::move(Outcome));
      continue;
    }

    // OSR tasks compile a skeleton (baseline clone entered at the anchored
    // loop header) instead of the method itself. Skeleton construction is
    // deterministic, so building it on the worker keeps the mutator stall
    // identical to a plain async compile.
    std::unique_ptr<ir::Function> OsrSkeleton;
    if (Outcome.Task.TaskKind == CompileTask::Kind::Osr) {
      OsrSkeleton =
          opt::buildOsrVariant(*Source, Outcome.Task.OsrHeaderBlockId);
      if (!OsrSkeleton) {
        Outcome.Error = "osr header unavailable";
        deliver(std::move(Outcome));
        continue;
      }
      Source = OsrSkeleton.get();
    }

    // Worker-private pass scaffolding: start from the compiler's installed
    // context (observer, extra metrics sink — both thread-safe by
    // contract) and substitute an analysis manager of our own, wired to
    // the task's profile snapshot. A fresh manager per task keeps cache
    // hit/miss counts identical to a synchronous compile of the same
    // snapshot, which deterministic mode's bit-identical guarantee relies
    // on.
    opt::PassContext WorkerCtx = TheCompiler.passContext();
    opt::AnalysisManager TaskAM(&Outcome.Task.ProfilesSnapshot);
    WorkerCtx.AM = &TaskAM;
    WorkerCtx.Blacklist = &Outcome.Task.BlacklistSnapshot;

    try {
      Outcome.Code =
          TheCompiler.compile(*Source, M, Outcome.Task.ProfilesSnapshot,
                              Outcome.Stats, WorkerCtx);
    } catch (const std::exception &E) {
      Outcome.Code = nullptr;
      Outcome.Error = E.what();
      Outcome.Exception = true;
    } catch (...) {
      Outcome.Code = nullptr;
      Outcome.Error = "unknown compiler exception";
      Outcome.Exception = true;
    }
    deliver(std::move(Outcome));
  }
}

void CompileWorkerPool::deliver(CompileOutcome Outcome) {
  {
    std::lock_guard<std::mutex> Guard(CompletedLock);
    Completed.push_back(std::move(Outcome));
    // Must change inside the critical section: waitUntilDrained's wait
    // predicate reads this counter under CompletedLock, and an increment
    // between the waiter's predicate check and its block would otherwise
    // lose the notification (the waiter would sleep past it forever).
    Delivered.fetch_add(1, std::memory_order_release);
  }
  CompletedSignal.notify_all();
}

static void sortBySequence(std::vector<CompileOutcome> &Batch) {
  std::sort(Batch.begin(), Batch.end(),
            [](const CompileOutcome &A, const CompileOutcome &B) {
              return A.Task.SequenceNo < B.Task.SequenceNo;
            });
}

std::vector<CompileOutcome> CompileWorkerPool::takeCompleted() {
  std::vector<CompileOutcome> Batch;
  {
    std::lock_guard<std::mutex> Guard(CompletedLock);
    Batch = std::move(Completed);
    Completed.clear();
  }
  sortBySequence(Batch);
  return Batch;
}

std::vector<CompileOutcome> CompileWorkerPool::waitUntilDrained() {
  // The mutator is the only producer, so the accepted-task count is stable
  // for the duration of the wait.
  const uint64_t Target = Queue.enqueuedCount();
  std::vector<CompileOutcome> Batch;
  {
    std::unique_lock<std::mutex> Guard(CompletedLock);
    CompletedSignal.wait(Guard, [&] {
      return Delivered.load(std::memory_order_acquire) +
                 Dropped.load(std::memory_order_acquire) >=
             Target;
    });
    Batch = std::move(Completed);
    Completed.clear();
  }
  sortBySequence(Batch);
  return Batch;
}
