//===- jit/CompileWorkerPool.cpp ----------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "jit/CompileWorkerPool.h"

#include "ir/Module.h"
#include "opt/Analysis.h"
#include "opt/OsrPlan.h"

#include <algorithm>
#include <exception>

using namespace incline;
using namespace incline::jit;

CompileWorkerPool::CompileWorkerPool(CompileQueue &Queue,
                                     Compiler &TheCompiler,
                                     const ir::Module &M, unsigned NumThreads)
    : Queue(Queue), TheCompiler(TheCompiler), M(M) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

CompileWorkerPool::~CompileWorkerPool() { shutdown(); }

void CompileWorkerPool::shutdown() {
  if (ShutDown)
    return;
  ShutDown = true;
  // Workers mid-compile abandon at their next cancellation checkpoint
  // instead of finishing work nobody will consume. Their outcomes still
  // deliver (as Cancelled bailouts), so drain accounting is unaffected.
  {
    std::lock_guard<std::mutex> Guard(ActiveLock);
    for (auto &[Symbol, Tok] : Active)
      if (Tok)
        Tok->requestCancel();
  }
  // Tasks still queued at close are never delivered; account them so a
  // drain waiter's target stays reachable instead of hanging forever.
  size_t DroppedNow = Queue.close();
  if (DroppedNow != 0) {
    {
      std::lock_guard<std::mutex> Guard(CompletedLock);
      Dropped.fetch_add(DroppedNow, std::memory_order_release);
    }
    CompletedSignal.notify_all();
  }
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
}

void CompileWorkerPool::workerLoop() {
  while (std::optional<CompileTask> Task = Queue.pop()) {
    CompileOutcome Outcome;
    Outcome.Task = std::move(*Task);

    const ir::Function *Source = M.function(Outcome.Task.Symbol);
    if (!Source) {
      Outcome.Error = "unknown symbol";
      deliver(std::move(Outcome));
      continue;
    }

    // OSR tasks compile a skeleton (baseline clone entered at the anchored
    // loop header) instead of the method itself. Skeleton construction is
    // deterministic, so building it on the worker keeps the mutator stall
    // identical to a plain async compile.
    std::unique_ptr<ir::Function> OsrSkeleton;
    if (Outcome.Task.TaskKind == CompileTask::Kind::Osr) {
      OsrSkeleton =
          opt::buildOsrVariant(*Source, Outcome.Task.OsrHeaderBlockId);
      if (!OsrSkeleton) {
        Outcome.Error = "osr header unavailable";
        deliver(std::move(Outcome));
        continue;
      }
      Source = OsrSkeleton.get();
    }

    // Worker-private pass scaffolding: start from the compiler's installed
    // context (observer, extra metrics sink — both thread-safe by
    // contract) and substitute an analysis manager of our own, wired to
    // the task's profile snapshot. A fresh manager per task keeps cache
    // hit/miss counts identical to a synchronous compile of the same
    // snapshot, which deterministic mode's bit-identical guarantee relies
    // on.
    opt::PassContext WorkerCtx = TheCompiler.passContext();
    opt::AnalysisManager TaskAM(&Outcome.Task.ProfilesSnapshot);
    WorkerCtx.AM = &TaskAM;
    WorkerCtx.Blacklist = &Outcome.Task.BlacklistSnapshot;
    WorkerCtx.PruneBlacklist = &Outcome.Task.PruneBlacklistSnapshot;
    WorkerCtx.ForceColdBranch = Outcome.Task.ForceColdBranch;
    WorkerCtx.Reachable = Outcome.Task.Reachable.get();
    WorkerCtx.Cancel = Outcome.Task.Cancel.get();
    WorkerCtx.DegradeRung = Outcome.Task.Rung;

    // Register the token so cancelTasksFor can reach work already popped
    // from the queue; deregistered (by token identity) before delivery.
    std::shared_ptr<support::CancellationToken> Tok = Outcome.Task.Cancel;
    if (Tok) {
      std::lock_guard<std::mutex> Guard(ActiveLock);
      Active.emplace(Outcome.Task.Symbol, Tok);
    }

    try {
      Outcome.Code =
          TheCompiler.compile(*Source, M, Outcome.Task.ProfilesSnapshot,
                              Outcome.Stats, WorkerCtx);
    } catch (const support::DeadlineExceeded &E) {
      Outcome.Code = nullptr;
      Outcome.Error = E.what();
      Outcome.Exception = true;
      Outcome.Class = CompileOutcome::BailoutClass::Deadline;
    } catch (const support::ResourceExhausted &E) {
      Outcome.Code = nullptr;
      Outcome.Error = E.what();
      Outcome.Exception = true;
      Outcome.Class = CompileOutcome::BailoutClass::Resource;
    } catch (const std::bad_alloc &) {
      // Allocation failure mid-compile is a resource event the supervisor
      // absorbs (degrade, don't strike) — the compile's private clones all
      // unwound, so the process is healthy.
      Outcome.Code = nullptr;
      Outcome.Error = "out of memory during compilation";
      Outcome.Exception = true;
      Outcome.Class = CompileOutcome::BailoutClass::Resource;
    } catch (const std::exception &E) {
      Outcome.Code = nullptr;
      Outcome.Error = E.what();
      Outcome.Exception = true;
    } catch (...) {
      Outcome.Code = nullptr;
      Outcome.Error = "unknown compiler exception";
      Outcome.Exception = true;
    }

    if (Tok) {
      // A cancel that lands after the compile finished still marks the
      // outcome: the result is for retired work either way.
      Outcome.Cancelled = Tok->cancelRequested();
      std::lock_guard<std::mutex> Guard(ActiveLock);
      for (auto [It, End] = Active.equal_range(Outcome.Task.Symbol);
           It != End; ++It)
        if (It->second == Tok) {
          Active.erase(It);
          break;
        }
    }
    deliver(std::move(Outcome));
  }
}

std::vector<CompileTask>
CompileWorkerPool::cancelTasksFor(std::string_view Symbol) {
  // Queued tasks first: removed outright, so they must count as dropped —
  // their sequence numbers are part of every drain target.
  std::vector<CompileTask> Removed = Queue.cancel(Symbol);
  if (!Removed.empty()) {
    {
      std::lock_guard<std::mutex> Guard(CompletedLock);
      Dropped.fetch_add(Removed.size(), std::memory_order_release);
    }
    CompletedSignal.notify_all();
  }
  // In-flight tasks get a cancel request; the worker abandons at its next
  // checkpoint and the outcome arrives marked Cancelled.
  {
    std::lock_guard<std::mutex> Guard(ActiveLock);
    for (auto [It, End] = Active.equal_range(Symbol); It != End; ++It)
      if (It->second)
        It->second->requestCancel();
  }
  return Removed;
}

void CompileWorkerPool::deliver(CompileOutcome Outcome) {
  {
    std::lock_guard<std::mutex> Guard(CompletedLock);
    Completed.push_back(std::move(Outcome));
    // Must change inside the critical section: waitUntilDrained's wait
    // predicate reads this counter under CompletedLock, and an increment
    // between the waiter's predicate check and its block would otherwise
    // lose the notification (the waiter would sleep past it forever).
    Delivered.fetch_add(1, std::memory_order_release);
  }
  CompletedSignal.notify_all();
}

static void sortBySequence(std::vector<CompileOutcome> &Batch) {
  std::sort(Batch.begin(), Batch.end(),
            [](const CompileOutcome &A, const CompileOutcome &B) {
              return A.Task.SequenceNo < B.Task.SequenceNo;
            });
}

std::vector<CompileOutcome> CompileWorkerPool::takeCompleted() {
  std::vector<CompileOutcome> Batch;
  {
    std::lock_guard<std::mutex> Guard(CompletedLock);
    Batch = std::move(Completed);
    Completed.clear();
  }
  sortBySequence(Batch);
  return Batch;
}

std::vector<CompileOutcome> CompileWorkerPool::waitUntilDrained() {
  // The mutator is the only producer, so the accepted-task count is stable
  // for the duration of the wait.
  const uint64_t Target = Queue.enqueuedCount();
  std::vector<CompileOutcome> Batch;
  {
    std::unique_lock<std::mutex> Guard(CompletedLock);
    CompletedSignal.wait(Guard, [&] {
      return Delivered.load(std::memory_order_acquire) +
                 Dropped.load(std::memory_order_acquire) >=
             Target;
    });
    Batch = std::move(Completed);
    Completed.clear();
  }
  sortBySequence(Batch);
  return Batch;
}
