//===- workloads/WorkloadsSparkOther.cpp - Spark/Neo4J/Dotty/STM workloads -===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniOO programs mirroring the paper's Spark-Perf suite (gauss-mix,
/// dec-tree, naive-bayes), the Neo4J graph queries, the Dotty compiler,
/// and STMBench7 over ScalaSTM.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsInternal.h"

using namespace incline::workloads;

std::vector<Workload> incline::workloads::sparkAndOtherWorkloads() {
  std::vector<Workload> Result;

  // gauss-mix: Gaussian-mixture assignment loops — distance kernels
  // reached through accessor methods; the paper's most-improved workload.
  Result.push_back({"gauss-mix", "spark",
                    "mixture-model EM; nested distance kernels",
                    R"(
class Point { var coords: int[]; }
class Metric {
  def combine(acc: int, diff: int): int { return acc; }
}
class Euclid extends Metric {
  def combine(acc: int, diff: int): int { return acc + diff * diff; }
}
class Manhattan extends Metric {
  def combine(acc: int, diff: int): int {
    if (diff < 0) { return acc - diff; }
    return acc + diff;
  }
}
class Gaussian {
  var mean: int[];
  var count: int;
  var accum: int[];
  var metric: Metric;
  def dist(p: Point): int {
    var i = 0;
    var d = 0;
    while (i < this.mean.length) {
      var diff = p.coords[i] - this.mean[i];
      d = this.metric.combine(d, diff);
      i = i + 1;
    }
    return d;
  }
  def absorb(p: Point) {
    var i = 0;
    while (i < this.accum.length) {
      this.accum[i] = this.accum[i] + p.coords[i];
      i = i + 1;
    }
    this.count = this.count + 1;
  }
  def refit() {
    if (this.count == 0) { return; }
    var i = 0;
    while (i < this.mean.length) {
      this.mean[i] = this.accum[i] / this.count;
      this.accum[i] = 0;
      i = i + 1;
    }
    this.count = 0;
  }
}
def nearest(gs: Gaussian[], p: Point): int {
  var best = 0;
  var bestD = gs[0].dist(p);
  var k = 1;
  while (k < gs.length) {
    var d = gs[k].dist(p);
    if (d < bestD) {
      bestD = d;
      best = k;
    }
    k = k + 1;
  }
  return best;
}
def main() {
  var dim = 6;
  var n = 120;
  var points = new Point[120];
  var i = 0;
  while (i < n) {
    var p = new Point();
    p.coords = new int[6];
    var d = 0;
    while (d < dim) {
      p.coords[d] = (i * 31 + d * 17) % 50 + i % 4 * 100;
      d = d + 1;
    }
    points[i] = p;
    i = i + 1;
  }
  var gs = new Gaussian[4];
  var k = 0;
  while (k < 4) {
    var g = new Gaussian();
    g.mean = new int[6];
    g.accum = new int[6];
    if (k % 2 == 0) { g.metric = new Euclid(); }
    else { g.metric = new Manhattan(); }
    var d2 = 0;
    while (d2 < dim) {
      g.mean[d2] = k * 100 + d2;
      d2 = d2 + 1;
    }
    gs[k] = g;
    k = k + 1;
  }
  var em = 0;
  var checksum = 0;
  while (em < 8) {
    var pi = 0;
    while (pi < n) {
      var best = nearest(gs, points[pi]);
      gs[best].absorb(points[pi]);
      checksum = (checksum + best) % 65521;
      // checksum is reduced mod 65521 per point; the coordinate dump is
      // a cold numeric-blowup diagnostic that never runs.
      if (checksum > 65521) {
        print(900011);
        print(em);
        print(pi);
        print(checksum);
        var d3 = 0;
        while (d3 < dim) {
          print(points[pi].coords[d3]);
          d3 = d3 + 1;
        }
      }
      pi = pi + 1;
    }
    var gk = 0;
    while (gk < 4) {
      gs[gk].refit();
      gk = gk + 1;
    }
    em = em + 1;
  }
  var gk2 = 0;
  while (gk2 < 4) {
    checksum = (checksum + gs[gk2].mean[0]) % 65521;
    gk2 = gk2 + 1;
  }
  print(checksum);
}
)",
                    12});

  // dec-tree: decision-tree classification — recursive polymorphic
  // classify over Split/Leaf nodes, driven by a feature-vector loop.
  Result.push_back({"dec-tree", "spark",
                    "decision-tree classification; recursive dispatch",
                    R"(
class TreeN { def classify(f: int[]): int { return 0; } }
class Split extends TreeN {
  var feature: int;
  var threshold: int;
  var lo: TreeN;
  var hi: TreeN;
  def classify(f: int[]): int {
    if (f[this.feature] < this.threshold) {
      return this.lo.classify(f);
    }
    return this.hi.classify(f);
  }
}
class LeafT extends TreeN {
  var label: int;
  def classify(f: int[]): int { return this.label; }
}
def buildTree(depth: int, seed: int): TreeN {
  if (depth <= 0) {
    var l = new LeafT();
    l.label = seed % 5;
    return l;
  }
  var s = new Split();
  s.feature = seed % 8;
  s.threshold = seed * 7 % 64;
  s.lo = buildTree(depth - 1, seed * 3 + 1);
  s.hi = buildTree(depth - 1, seed * 5 + 2);
  return s;
}
def main() {
  var tree = buildTree(8, 1);
  var hist = new int[5];
  var rep = 0;
  while (rep < 15) {
    var s = 0;
    while (s < 250) {
      var f = new int[8];
      var d = 0;
      while (d < 8) {
        f[d] = (s * 13 + d * 29 + rep) % 64;
        d = d + 1;
      }
      var label = tree.classify(f);
      // Leaves carry labels 0..4 by construction; this out-of-range
      // bounds check is the classic never-taken guard.
      if (label > 4) {
        print(900012);
        print(rep);
        print(s);
        print(label);
        var f2 = 0;
        while (f2 < 8) {
          print(f[f2]);
          f2 = f2 + 1;
        }
      }
      hist[label] = hist[label] + 1;
      s = s + 1;
    }
    rep = rep + 1;
  }
  var checksum = 0;
  var h = 0;
  while (h < 5) {
    checksum = (checksum * 31 + hist[h]) % 1000003;
    h = h + 1;
  }
  print(checksum);
}
)",
                    12});

  // naive-bayes: counting + classification through per-class counter
  // objects — the per-feature accessor methods must fold into the loop.
  Result.push_back({"naive-bayes", "spark",
                    "naive Bayes training/classification; counter accessors",
                    R"(
class Counter {
  var counts: int[];
  var total: int;
  def bump(f: int) {
    this.counts[f] = this.counts[f] + 1;
    this.total = this.total + 1;
  }
  def weightOf(f: int): int {
    return (this.counts[f] * 1000 + 1) / (this.total + 2);
  }
}
def trainDoc(c: Counter, seed: int) {
  var w = 0;
  while (w < 10) {
    c.bump((seed * 7 + w * 13) % 32);
    w = w + 1;
  }
}
def scoreDoc(c: Counter, seed: int): int {
  var score = 0;
  var w = 0;
  while (w < 10) {
    score = score + c.weightOf((seed * 7 + w * 13) % 32);
    w = w + 1;
  }
  return score;
}
def main() {
  var spam = new Counter();
  spam.counts = new int[32];
  var ham = new Counter();
  ham.counts = new int[32];
  var doc = 0;
  while (doc < 150) {
    if (doc % 3 == 0) { trainDoc(spam, doc); }
    else { trainDoc(ham, doc); }
    doc = doc + 1;
  }
  var correct = 0;
  var rep = 0;
  while (rep < 10) {
    var d = 0;
    while (d < 150) {
      var isSpam = scoreDoc(spam, d) > scoreDoc(ham, d);
      if (isSpam == (d % 3 == 0)) { correct = correct + 1; }
      // correct only ever increments from zero; the model-state dump is
      // a cold diagnostic path that never fires.
      if (correct < 0) {
        print(900013);
        print(rep);
        print(d);
        print(correct);
        print(spam.total);
        print(ham.total);
      }
      d = d + 1;
    }
    rep = rep + 1;
  }
  print(correct);
}
)",
                    12});

  // neo4j: graph-query traversal — predicate objects over adjacency
  // arrays; polymorphic test() in a two-level loop.
  Result.push_back({"neo4j", "other",
                    "graph queries; predicate dispatch over adjacency",
                    R"(
class GNode {
  var id: int;
  var kind: int;
  var adjStart: int;
  var adjCount: int;
}
class Pred { def test(n: GNode): bool { return true; } }
class KindPred extends Pred {
  var k: int;
  def test(n: GNode): bool { return n.kind == this.k; }
}
class DegreePred extends Pred {
  var minDegree: int;
  def test(n: GNode): bool { return n.adjCount >= this.minDegree; }
}
def query(nodes: GNode[], adj: int[], p: Pred): int {
  var i = 0;
  var acc = 0;
  while (i < nodes.length) {
    var n = nodes[i];
    if (p.test(n)) {
      var j = 0;
      while (j < n.adjCount) {
        acc = (acc + nodes[adj[n.adjStart + j]].kind + 1) % 65521;
        j = j + 1;
      }
    }
    i = i + 1;
  }
  return acc;
}
def main() {
  var n = 120;
  var degree = 4;
  var nodes = new GNode[120];
  var adj = new int[480];
  var i = 0;
  while (i < n) {
    var node = new GNode();
    node.id = i;
    node.kind = i * 7 % 5;
    node.adjStart = i * degree;
    node.adjCount = degree;
    nodes[i] = node;
    var j = 0;
    while (j < degree) {
      adj[i * degree + j] = (i + j * j + 1) % n;
      j = j + 1;
    }
    i = i + 1;
  }
  var kp = new KindPred();
  kp.k = 2;
  var dp = new DegreePred();
  dp.minDegree = 4;
  var acc = 0;
  var rep = 0;
  while (rep < 25) {
    acc = (acc + query(nodes, adj, kp)) % 1000003;
    acc = (acc + query(nodes, adj, dp)) % 1000003;
    // acc stays below the modulus; the node-kind dump below is a cold
    // consistency check that never executes.
    if (acc > 1000003) {
      print(900014);
      print(rep);
      print(acc);
      var n2 = 0;
      while (n2 < n) {
        print(nodes[n2].kind);
        n2 = n2 + 1;
      }
    }
    rep = rep + 1;
  }
  print(acc);
}
)",
                    15});

  // dotty: a typechecker-shaped pass — subtype-lattice joins through
  // virtual typeOf methods over a term tree (deeper trees, different
  // class mix than scalac).
  Result.push_back({"dotty", "other",
                    "typechecker pass; lattice joins over term trees",
                    R"(
def joinTypes(a: int, b: int): int {
  if (a == b) { return a; }
  if (a > b) { return joinTypes(b, a); }
  if (a == 0) { return b; }
  return 9;
}
class Term {
  def typeOf(env: int[]): int { return 0; }
  def depth(): int { return 1; }
}
class Lit2 extends Term {
  var kind: int;
  def typeOf(env: int[]): int { return this.kind; }
}
class Ref extends Term {
  var slot: int;
  def typeOf(env: int[]): int { return env[this.slot]; }
}
class App extends Term {
  var fn: Term;
  var arg: Term;
  def typeOf(env: int[]): int {
    return joinTypes(this.fn.typeOf(env), this.arg.typeOf(env));
  }
  def depth(): int {
    var df = this.fn.depth();
    var da = this.arg.depth();
    if (df > da) { return df + 1; }
    return da + 1;
  }
}
class Ascribe extends Term {
  var body: Term;
  var ty: int;
  def typeOf(env: int[]): int {
    return joinTypes(this.body.typeOf(env), this.ty);
  }
  def depth(): int { return this.body.depth() + 1; }
}
def buildTerm(depth: int, seed: int): Term {
  if (depth <= 0) {
    if (seed % 2 == 0) {
      var l = new Lit2();
      l.kind = seed % 8 + 1;
      return l;
    }
    var r = new Ref();
    r.slot = seed % 6;
    return r;
  }
  if (seed % 3 == 0) {
    var asc = new Ascribe();
    asc.body = buildTerm(depth - 1, seed * 5 + 1);
    asc.ty = seed % 8 + 1;
    return asc;
  }
  var app = new App();
  app.fn = buildTerm(depth - 1, seed * 3 + 1);
  app.arg = buildTerm(depth - 1, seed * 7 + 2);
  return app;
}
def main() {
  var term = buildTerm(10, 1);
  var env = new int[6];
  var acc = 0;
  var rep = 0;
  while (rep < 12) {
    env[rep % 6] = rep % 8 + 1;
    acc = (acc + term.typeOf(env) * 31 + term.depth()) % 1000003;
    // acc is reduced mod 1000003 each pass; this typing-environment
    // dump is dead code in every real run.
    if (acc > 1000003) {
      print(900015);
      print(rep);
      print(acc);
      var e3 = 0;
      while (e3 < env.length) {
        print(env[e3]);
        e3 = e3 + 1;
      }
    }
    rep = rep + 1;
  }
  print(acc);
}
)",
                    12});

  // stmbench: transactional linked-list operations through polymorphic
  // transaction objects — pointer chasing plus dispatch.
  Result.push_back({"stmbench", "other",
                    "STM-like list transactions; op-object dispatch",
                    R"(
class Cell {
  var value: int;
  var next: Cell;
}
class LinkedList {
  var head: Cell;
  var size: int;
  def insert(v: int) {
    var c = new Cell();
    c.value = v;
    c.next = this.head;
    this.head = c;
    this.size = this.size + 1;
  }
  def remove(v: int): int {
    if (this.head == null) { return 0; }
    if (this.head.value == v) {
      this.head = this.head.next;
      this.size = this.size - 1;
      return 1;
    }
    var cur = this.head;
    while (cur.next != null) {
      if (cur.next.value == v) {
        cur.next = cur.next.next;
        this.size = this.size - 1;
        return 1;
      }
      cur = cur.next;
    }
    return 0;
  }
  def contains(v: int): bool {
    var cur = this.head;
    var found = false;
    while (cur != null) {
      if (cur.value == v) { found = true; }
      cur = cur.next;
    }
    return found;
  }
}
class TxOp { def apply(l: LinkedList): int { return 0; } }
class InsertOp extends TxOp {
  var v: int;
  def apply(l: LinkedList): int {
    l.insert(this.v);
    return 1;
  }
}
class RemoveOp extends TxOp {
  var v: int;
  def apply(l: LinkedList): int { return l.remove(this.v); }
}
class LookupOp extends TxOp {
  var v: int;
  def apply(l: LinkedList): int {
    if (l.contains(this.v)) { return 1; }
    return 0;
  }
}
def main() {
  var ops = new TxOp[30];
  var k = 0;
  while (k < 10) {
    var ins = new InsertOp();
    ins.v = k * 3 % 10;
    ops[k] = ins;
    var rem = new RemoveOp();
    rem.v = k * 7 % 10;
    ops[k + 10] = rem;
    var look = new LookupOp();
    look.v = k % 10;
    ops[k + 20] = look;
    k = k + 1;
  }
  var list = new LinkedList();
  var prime = 0;
  while (prime < 50) {
    list.insert(prime + 10);
    prime = prime + 1;
  }
  var acc = 0;
  var rep = 0;
  while (rep < 60) {
    var o = 0;
    while (o < 30) {
      acc = (acc + ops[o].apply(list)) % 1000003;
      // acc stays below the modulus; the list walk below is a cold
      // transaction-abort dump that never executes.
      if (acc > 1000003) {
        print(900016);
        print(rep);
        print(o);
        print(acc);
        print(list.size);
        var cur = list.head;
        while (cur != null) {
          print(cur.value);
          cur = cur.next;
        }
      }
      o = o + 1;
    }
    rep = rep + 1;
  }
  print(acc);
  print(list.size);
}
)",
                    15});

  return Result;
}
