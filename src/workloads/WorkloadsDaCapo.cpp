//===- workloads/WorkloadsDaCapo.cpp - DaCapo-shaped workloads -------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniOO programs mirroring the Java DaCapo benchmarks the paper
/// evaluates on: event-driven simulation (avrora), interpreter dispatch
/// (jython), text indexing (luindex), AST visitors (pmd), numeric ray
/// tracing (sunflow), and tree transformation (xalan).
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsInternal.h"

using namespace incline::workloads;

std::vector<Workload> incline::workloads::dacapoWorkloads() {
  std::vector<Workload> Result;

  // avrora: event-driven device simulation. A tight tick loop dispatching
  // over a small, stable set of device classes — a 3-way polymorphic
  // callsite that rewards typeswitch speculation.
  Result.push_back({"avrora", "dacapo",
                    "event-driven simulation; 3-way polymorphic tick loop",
                    R"(
class Device {
  var state: int;
  def tick(t: int): int { return 0; }
}
class Timer extends Device {
  def tick(t: int): int {
    this.state = this.state + 1;
    if (this.state % 7 == 0) { return 1; }
    return 0;
  }
}
class Radio extends Device {
  def tick(t: int): int {
    this.state = this.state + t % 3;
    return this.state % 2;
  }
}
class Cpu extends Device {
  def tick(t: int): int {
    this.state = this.state * 2 % 255 + 1;
    return this.state % 3;
  }
}
def step(devices: Device[], t: int): int {
  var d = 0;
  var interrupts = 0;
  while (d < devices.length) {
    interrupts = interrupts + devices[d].tick(t);
    d = d + 1;
  }
  return interrupts;
}
def main() {
  var devices = new Device[3];
  devices[0] = new Timer();
  devices[1] = new Radio();
  devices[2] = new Cpu();
  var interrupts = 0;
  var t = 0;
  while (t < 2500) {
    interrupts = interrupts + step(devices, t);
    // Corruption check: tick() never returns a negative count, so this
    // diagnostic dump is dead in every real run — exactly the cold path
    // uncommon-trap pruning exists to strip.
    if (interrupts < 0) {
      print(900001);
      print(t);
      print(interrupts);
      var d2 = 0;
      while (d2 < devices.length) {
        print(devices[d2].state);
        d2 = d2 + 1;
      }
    }
    t = t + 1;
  }
  print(interrupts);
}
)",
                    15});

  // jython: an interpreter's opcode dispatch loop — a megamorphic callsite
  // (6 opcode classes) where only the hottest receivers are worth
  // speculating; the rest go through the typeswitch fallback.
  Result.push_back({"jython", "dacapo",
                    "interpreter dispatch; megamorphic exec loop",
                    R"(
class Vm {
  var stack: int[];
  var sp: int;
  def push(v: int) { this.stack[this.sp] = v; this.sp = this.sp + 1; }
  def pop(): int { this.sp = this.sp - 1; return this.stack[this.sp]; }
}
class Op { def exec(vm: Vm): int { return 0; } }
class PushOp extends Op {
  var v: int;
  def exec(vm: Vm): int { vm.push(this.v); return 1; }
}
class AddOp extends Op {
  def exec(vm: Vm): int { vm.push(vm.pop() + vm.pop()); return 1; }
}
class MulOp extends Op {
  def exec(vm: Vm): int { vm.push(vm.pop() * vm.pop() % 9973); return 1; }
}
class DupOp extends Op {
  def exec(vm: Vm): int {
    var x = vm.pop();
    vm.push(x);
    vm.push(x);
    return 1;
  }
}
class ModOp extends Op {
  def exec(vm: Vm): int {
    var b = vm.pop();
    var a = vm.pop();
    vm.push(a % (b + 1));
    return 1;
  }
}
class PopOp extends Op {
  def exec(vm: Vm): int { vm.pop(); return 1; }
}
def run(prog: Op[], vm: Vm): int {
  var pc = 0;
  var count = 0;
  while (pc < prog.length) {
    count = count + prog[pc].exec(vm);
    pc = pc + 1;
  }
  return count + vm.pop();
}
def main() {
  var prog = new Op[11];
  var p0 = new PushOp(); p0.v = 7; prog[0] = p0;
  var p1 = new PushOp(); p1.v = 13; prog[1] = p1;
  prog[2] = new AddOp();
  prog[3] = new DupOp();
  prog[4] = new MulOp();
  var p5 = new PushOp(); p5.v = 3; prog[5] = p5;
  prog[6] = new ModOp();
  prog[7] = new DupOp();
  var p8 = new PushOp(); p8.v = 11; prog[8] = p8;
  prog[9] = new MulOp();
  prog[10] = new AddOp();
  var vm = new Vm();
  vm.stack = new int[64];
  vm.sp = 0;
  var total = 0;
  var rep = 0;
  while (rep < 300) {
    total = (total + run(prog, vm)) % 1000003;
    // The modulo above bounds total below 1000003; this stack dump only
    // fires on an arithmetic bug and stays cold forever.
    if (total > 1000003) {
      print(900002);
      print(rep);
      print(total);
      var sp2 = 0;
      while (sp2 < vm.sp) {
        print(vm.stack[sp2]);
        sp2 = sp2 + 1;
      }
    }
    rep = rep + 1;
  }
  print(total);
  print(vm.sp);
}
)",
                    15});

  // luindex: tokenizing and indexing — many tiny helpers on a hot path;
  // inlining the whole tokenize/hash/add group (one cluster) is what pays.
  Result.push_back({"luindex", "dacapo",
                    "text tokenizing/indexing; tiny-helper cluster",
                    R"(
def isSep(c: int): bool { return c == 0; }
def hashChar(h: int, c: int): int { return (h * 31 + c) % 65521; }
class Index {
  var buckets: int[];
  def add(h: int) {
    var b = h % this.buckets.length;
    this.buckets[b] = this.buckets[b] + 1;
  }
  def weight(): int {
    var i = 0;
    var w = 0;
    while (i < this.buckets.length) {
      w = (w + this.buckets[i] * (i + 1)) % 100003;
      i = i + 1;
    }
    return w;
  }
}
def tokenize(text: int[], idx: Index): int {
  var i = 0;
  var h = 7;
  var tokens = 0;
  while (i < text.length) {
    var c = text[i];
    if (isSep(c)) {
      if (h != 7) {
        idx.add(h);
        tokens = tokens + 1;
        h = 7;
      }
    } else {
      h = hashChar(h, c);
    }
    i = i + 1;
  }
  if (h != 7) {
    idx.add(h);
    tokens = tokens + 1;
  }
  return tokens;
}
def main() {
  var text = new int[600];
  var i = 0;
  while (i < 600) {
    if (i % 7 == 3) { text[i] = 0; }
    else { text[i] = i * 13 % 26 + 1; }
    i = i + 1;
  }
  var idx = new Index();
  idx.buckets = new int[97];
  var tokens = 0;
  var rep = 0;
  while (rep < 40) {
    tokens = tokens + tokenize(text, idx);
    // tokenize() returns a non-negative count; the bucket dump below is
    // a cold diagnostic path that never executes.
    if (tokens < 0) {
      print(900003);
      print(rep);
      print(tokens);
      var b2 = 0;
      while (b2 < idx.buckets.length) {
        print(idx.buckets[b2]);
        b2 = b2 + 1;
      }
    }
    rep = rep + 1;
  }
  print(tokens);
  print(idx.weight());
}
)",
                    15});

  // pmd: rule checking via AST visitors — mutually recursive virtual
  // dispatch (accept/visit), stressing the recursion penalty (Eq. 14).
  Result.push_back({"pmd", "dacapo",
                    "AST visitor rules; mutually recursive dispatch",
                    R"(
class Visitor {
  def visitBin(n: BinNode): int { return 0; }
  def visitLeaf(n: LeafNode): int { return 0; }
}
class Node {
  var left: Node;
  var right: Node;
  var value: int;
  def accept(v: Visitor): int { return 0; }
}
class BinNode extends Node {
  def accept(v: Visitor): int { return v.visitBin(this); }
}
class LeafNode extends Node {
  def accept(v: Visitor): int { return v.visitLeaf(this); }
}
class CountVisitor extends Visitor {
  def visitBin(n: BinNode): int {
    return 1 + n.left.accept(this) + n.right.accept(this);
  }
  def visitLeaf(n: LeafNode): int { return 1; }
}
class SumVisitor extends Visitor {
  def visitBin(n: BinNode): int {
    return (n.left.accept(this) + n.right.accept(this)) % 65521;
  }
  def visitLeaf(n: LeafNode): int { return n.value; }
}
def build(depth: int, seed: int): Node {
  if (depth <= 0) {
    var leaf = new LeafNode();
    leaf.value = seed % 100;
    return leaf;
  }
  var n = new BinNode();
  n.left = build(depth - 1, seed * 2 + 1);
  n.right = build(depth - 1, seed * 3 + 2);
  return n;
}
def main() {
  var tree = build(9, 1);
  var cv = new CountVisitor();
  var sv = new SumVisitor();
  var total = 0;
  var rep = 0;
  while (rep < 12) {
    total = (total + tree.accept(cv)) % 100003;
    total = (total + tree.accept(sv)) % 100003;
    // Both accumulations are reduced mod 100003, so this rule-violation
    // report is dead code in every real run.
    if (total > 100003) {
      print(900004);
      print(rep);
      print(total);
      print(tree.value);
      print(tree.left.value);
      print(tree.right.value);
    }
    rep = rep + 1;
  }
  print(total);
}
)",
                    15});

  // sunflow: a numeric kernel whose inner loop calls several *small* hot
  // methods (dot products, clamps). The paper's adaptive threshold case:
  // small methods must stay inlineable even near the budget.
  Result.push_back({"sunflow", "dacapo",
                    "numeric kernel; small hot leaf methods",
                    R"(
class Vec {
  var x: int;
  var y: int;
  var z: int;
  def dot(o: Vec): int {
    return this.x * o.x + this.y * o.y + this.z * o.z;
  }
  def manhattan(): int {
    var ax = this.x;
    if (ax < 0) { ax = 0 - ax; }
    var ay = this.y;
    if (ay < 0) { ay = 0 - ay; }
    var az = this.z;
    if (az < 0) { az = 0 - az; }
    return ax + ay + az;
  }
}
def clamp(v: int): int {
  if (v < 0) { return 0; }
  if (v > 255) { return 255; }
  return v;
}
def shade(dir: Vec, lights: Vec[]): int {
  var i = 0;
  var energy = 0;
  while (i < lights.length) {
    var d = dir.dot(lights[i]);
    energy = energy + clamp(d % 512);
    i = i + 1;
  }
  return energy + dir.manhattan();
}
def main() {
  var lights = new Vec[8];
  var k = 0;
  while (k < 8) {
    var l = new Vec();
    l.x = k * 3 - 10;
    l.y = 7 - k;
    l.z = k * k % 13;
    lights[k] = l;
    k = k + 1;
  }
  var acc = 0;
  var py = 0;
  while (py < 40) {
    var px = 0;
    while (px < 40) {
      var dir = new Vec();
      dir.x = px % 11 - 5;
      dir.y = py % 9 - 4;
      dir.z = 3;
      acc = (acc + shade(dir, lights)) % 1000003;
      // acc is reduced mod 1000003 each pixel; the light dump is a cold
      // overflow diagnostic that never runs.
      if (acc > 1000003) {
        print(900005);
        print(px);
        print(py);
        print(acc);
        var lz = 0;
        while (lz < lights.length) {
          print(lights[lz].x + lights[lz].y + lights[lz].z);
          lz = lz + 1;
        }
      }
      px = px + 1;
    }
    py = py + 1;
  }
  print(acc);
}
)",
                    15});

  // xalan: document tree transformation — allocation-heavy recursive
  // polymorphic rewriting.
  Result.push_back({"xalan", "dacapo",
                    "tree transformation; recursive polymorphic rewrite",
                    R"(
class TNode {
  def transform(d: int): TNode { return this; }
  def weigh(): int { return 0; }
}
class Text extends TNode {
  var t: int;
  def transform(d: int): TNode {
    var n = new Text();
    n.t = this.t + d;
    return n;
  }
  def weigh(): int { return this.t % 31; }
}
class Elem extends TNode {
  var tag: int;
  var a: TNode;
  var b: TNode;
  def transform(d: int): TNode {
    var n = new Elem();
    n.tag = this.tag;
    if (this.tag % 2 == 0) {
      n.a = this.b.transform(d + 1);
      n.b = this.a.transform(d + 1);
    } else {
      n.a = this.a.transform(d);
      n.b = this.b.transform(d);
    }
    return n;
  }
  def weigh(): int {
    return (this.tag + this.a.weigh() * 3 + this.b.weigh() * 5) % 65521;
  }
}
def buildDoc(depth: int, tag: int): TNode {
  if (depth <= 0) {
    var t = new Text();
    t.t = tag;
    return t;
  }
  var e = new Elem();
  e.tag = tag;
  e.a = buildDoc(depth - 1, tag * 2 + 1);
  e.b = buildDoc(depth - 1, tag * 2 + 2);
  return e;
}
def main() {
  var doc = buildDoc(8, 1);
  var acc = 0;
  var rep = 0;
  while (rep < 8) {
    var t = doc.transform(rep);
    acc = (acc + t.weigh()) % 100003;
    // weigh() results are folded mod 100003; this malformed-document
    // trace never executes.
    if (acc > 100003) {
      print(900006);
      print(rep);
      print(acc);
      print(acc % 7);
      print(acc % 11);
      print(acc % 13);
      print(rep * 31 + acc);
    }
    rep = rep + 1;
  }
  print(acc);
}
)",
                    15});

  return Result;
}
