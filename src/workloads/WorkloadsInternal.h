//===- workloads/WorkloadsInternal.h - Suite construction helpers ----------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Private header: the per-suite workload constructors assembled by the
/// registry in Workloads.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_WORKLOADS_WORKLOADSINTERNAL_H
#define INCLINE_WORKLOADS_WORKLOADSINTERNAL_H

#include "workloads/Workloads.h"

namespace incline::workloads {

std::vector<Workload> dacapoWorkloads();
std::vector<Workload> scalaDacapoWorkloads();
std::vector<Workload> sparkAndOtherWorkloads();

} // namespace incline::workloads

#endif // INCLINE_WORKLOADS_WORKLOADSINTERNAL_H
