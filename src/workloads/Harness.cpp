//===- workloads/Harness.cpp --------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include "frontend/Compiler.h"
#include "support/Statistics.h"

using namespace incline;
using namespace incline::workloads;

RunResult incline::workloads::runWorkload(const Workload &W,
                                          jit::Compiler &Compiler,
                                          const RunConfig &Config) {
  RunResult Result;
  Result.Workload = W.Name;
  Result.CompilerName = Compiler.name();

  frontend::CompileResult Compiled = frontend::compileProgram(W.Source);
  if (!Compiled.succeeded()) {
    Result.Ok = false;
    Result.Error = "frontend: " + frontend::renderDiagnostics(Compiled.Diags);
    return Result;
  }

  jit::JitRuntime Runtime(*Compiled.Mod, Compiler, Config.Jit);
  int Iterations = Config.Iterations > 0 ? Config.Iterations : W.Iterations;
  for (int Iter = 0; Iter < Iterations; ++Iter) {
    interp::ExecResult R = Runtime.runMain();
    if (!R.ok()) {
      Result.Ok = false;
      Result.Error = R.TrapMessage;
      return Result;
    }
    Result.IterationCycles.push_back(Runtime.effectiveCycles(R));
    Result.Output = std::move(R.Output);
  }
  Result.SteadyStateCycles = steadyStateMean(Result.IterationCycles);
  Result.JitStats = Runtime.stats();
  Runtime.drainCompilations();
  Result.InstalledCodeSize = Runtime.installedCodeSize();
  Result.Compilations = Runtime.compilations();
  return Result;
}

double incline::workloads::speedupOf(const RunResult &Baseline,
                                     const RunResult &Measured) {
  if (Measured.SteadyStateCycles <= 0)
    return 0;
  return Baseline.SteadyStateCycles / Measured.SteadyStateCycles;
}
