//===- workloads/WorkloadsScala.cpp - Scala-DaCapo-shaped workloads --------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniOO programs mirroring the Scala DaCapo benchmarks — the workloads
/// the paper's inliner improves most, because idiomatic Scala code hides
/// hot loops behind layers of small polymorphic methods: collection
/// combinators (the Fig. 1 foreach example), factor-graph inference
/// (factorie), rewriting strategies (kiama), and compiler passes
/// (scalac, and dotty in the "other" group).
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadsInternal.h"

using namespace incline::workloads;

std::vector<Workload> incline::workloads::scalaDacapoWorkloads() {
  std::vector<Workload> Result;

  // actors/foreach: the paper's Fig. 1 — a generic foreach whose inner
  // length/get/apply calls only devirtualize when the whole cluster is
  // inlined together.
  Result.push_back({"foreach", "scala-dacapo",
                    "Fig.1 collection combinators; cluster-or-nothing",
                    R"(
class Fn { def apply(x: int): int { return x; } }
class Doubler extends Fn { def apply(x: int): int { return x * 2; } }
class Squarer extends Fn { def apply(x: int): int { return x * x % 251; } }
class Seq {
  var data: int[];
  def length(): int { return this.data.length; }
  def get(i: int): int { return this.data[i]; }
  def foreach(f: Fn): int {
    var i = 0;
    var acc = 0;
    while (i < this.length()) {
      acc = (acc + f.apply(this.get(i))) % 1000003;
      i = i + 1;
    }
    return acc;
  }
}
def main() {
  var s = new Seq();
  s.data = new int[64];
  var i = 0;
  while (i < 64) {
    s.data[i] = i * 3 % 17;
    i = i + 1;
  }
  var total = 0;
  var rep = 0;
  while (rep < 25) {
    total = (total + s.foreach(new Doubler())) % 1000003;
    total = (total + s.foreach(new Squarer())) % 1000003;
    // total stays below the modulus by construction; this element dump
    // is a cold diagnostic path that never fires.
    if (total > 1000003) {
      print(900007);
      print(rep);
      print(total);
      var x2 = 0;
      while (x2 < s.data.length) {
        print(s.data[x2]);
        x2 = x2 + 1;
      }
    }
    rep = rep + 1;
  }
  print(total);
}
)",
                    15});

  // factorie: factor-graph inference — sweeps flipping binary variables,
  // each sweep evaluating polymorphic factor scores in a hot inner loop.
  Result.push_back({"factorie", "scala-dacapo",
                    "factor-graph inference; polymorphic score loop",
                    R"(
class Factor { def score(assign: int[]): int { return 0; } }
class UnaryFactor extends Factor {
  var idx: int;
  var w: int;
  def score(assign: int[]): int { return assign[this.idx] * this.w; }
}
class PairFactor extends Factor {
  var i: int;
  var j: int;
  var w: int;
  def score(assign: int[]): int {
    if (assign[this.i] == assign[this.j]) { return this.w; }
    return 0 - this.w;
  }
}
class BiasFactor extends Factor {
  var w: int;
  def score(assign: int[]): int { return this.w; }
}
def energy(factors: Factor[], assign: int[]): int {
  var i = 0;
  var e = 0;
  while (i < factors.length) {
    e = e + factors[i].score(assign);
    i = i + 1;
  }
  return e;
}
def main() {
  var vars = 20;
  var assign = new int[20];
  var factors = new Factor[46];
  var f = 0;
  while (f < 20) {
    var u = new UnaryFactor();
    u.idx = f;
    u.w = f % 5 - 2;
    factors[f] = u;
    f = f + 1;
  }
  while (f < 44) {
    var p = new PairFactor();
    p.i = (f * 7) % 20;
    p.j = (f * 11 + 3) % 20;
    p.w = f % 7 - 3;
    factors[f] = p;
    f = f + 1;
  }
  var b1 = new BiasFactor();
  b1.w = 2;
  factors[44] = b1;
  var b2 = new BiasFactor();
  b2.w = 0 - 1;
  factors[45] = b2;

  var sweep = 0;
  while (sweep < 12) {
    var v = 0;
    while (v < vars) {
      var before = energy(factors, assign);
      // Factor weights are tiny (|w| <= 3, 46 factors), so |energy| is
      // bounded far below 100000 — the assignment dump never executes.
      if (before > 100000) {
        print(900008);
        print(sweep);
        print(v);
        print(before);
        var a2 = 0;
        while (a2 < vars) {
          print(assign[a2]);
          a2 = a2 + 1;
        }
      }
      assign[v] = 1 - assign[v];
      var after = energy(factors, assign);
      if (after < before) { } else { assign[v] = 1 - assign[v]; }
      v = v + 1;
    }
    sweep = sweep + 1;
  }
  var checksum = energy(factors, assign);
  var v2 = 0;
  while (v2 < vars) {
    checksum = checksum * 2 + assign[v2];
    v2 = v2 + 1;
  }
  print(checksum);
}
)",
                    15});

  // kiama: strategy-combinator rewriting — deep chains of polymorphic
  // apply() calls through Choice/Repeat combinator objects.
  Result.push_back({"kiama", "scala-dacapo",
                    "rewriting strategies; combinator dispatch chains",
                    R"(
class Strategy { def apply(t: int): int { return t; } }
class Halve extends Strategy {
  def apply(t: int): int {
    if (t % 2 == 0) { return t / 2; }
    return 0 - 1;
  }
}
class DecOnTriple extends Strategy {
  def apply(t: int): int {
    if (t % 3 == 0) { return t - 1; }
    return 0 - 1;
  }
}
class Choice extends Strategy {
  var s1: Strategy;
  var s2: Strategy;
  def apply(t: int): int {
    var r = this.s1.apply(t);
    if (r >= 0) { return r; }
    return this.s2.apply(t);
  }
}
class Repeat extends Strategy {
  var s: Strategy;
  def apply(t: int): int {
    var cur = t;
    var r = this.s.apply(cur);
    while (r >= 0) {
      cur = r;
      r = this.s.apply(cur);
    }
    return cur;
  }
}
def main() {
  var choice = new Choice();
  choice.s1 = new Halve();
  choice.s2 = new DecOnTriple();
  var strat = new Repeat();
  strat.s = choice;
  var acc = 0;
  var i = 1;
  while (i < 3500) {
    acc = (acc + strat.apply(i * 7 + 1)) % 65521;
    // acc is reduced mod 65521 every step; the divergence trace below
    // is dead in every real run.
    if (acc > 65521) {
      print(900009);
      print(i);
      print(acc);
      print(acc * 2 + i);
      print(acc % 3);
      print(acc % 5);
    }
    i = i + 1;
  }
  print(acc);
}
)",
                    15});

  // scalac: a constant-folding compiler pass over expression trees — `is`
  // and `as` type tests plus recursive polymorphic fold/eval.
  Result.push_back({"scalac", "scala-dacapo",
                    "compiler pass; type tests + recursive tree fold",
                    R"(
class Expr {
  def eval(env: int[]): int { return 0; }
  def size(): int { return 1; }
  def fold(): Expr { return this; }
}
class Lit extends Expr {
  var v: int;
  def eval(env: int[]): int { return this.v; }
}
class VarE extends Expr {
  var i: int;
  def eval(env: int[]): int { return env[this.i]; }
}
class Add extends Expr {
  var a: Expr;
  var b: Expr;
  def eval(env: int[]): int {
    return (this.a.eval(env) + this.b.eval(env)) % 65521;
  }
  def size(): int { return 1 + this.a.size() + this.b.size(); }
  def fold(): Expr {
    var fa = this.a.fold();
    var fb = this.b.fold();
    if (fa is Lit) {
      if (fb is Lit) {
        var l = new Lit();
        l.v = ((fa as Lit).v + (fb as Lit).v) % 65521;
        return l;
      }
    }
    var n = new Add();
    n.a = fa;
    n.b = fb;
    return n;
  }
}
class Mul extends Expr {
  var a: Expr;
  var b: Expr;
  def eval(env: int[]): int {
    return this.a.eval(env) * this.b.eval(env) % 65521;
  }
  def size(): int { return 1 + this.a.size() + this.b.size(); }
  def fold(): Expr {
    var fa = this.a.fold();
    var fb = this.b.fold();
    if (fa is Lit) {
      if (fb is Lit) {
        var l = new Lit();
        l.v = (fa as Lit).v * (fb as Lit).v % 65521;
        return l;
      }
    }
    var n = new Mul();
    n.a = fa;
    n.b = fb;
    return n;
  }
}
def build(depth: int, seed: int): Expr {
  if (depth <= 0) {
    if (seed % 3 == 0) {
      var v = new VarE();
      v.i = seed % 8;
      return v;
    }
    var l = new Lit();
    l.v = seed % 97;
    return l;
  }
  if (seed % 2 == 0) {
    var a = new Add();
    a.a = build(depth - 1, seed * 5 + 1);
    a.b = build(depth - 1, seed * 3 + 2);
    return a;
  }
  var m = new Mul();
  m.a = build(depth - 1, seed * 7 + 1);
  m.b = build(depth - 1, seed * 5 + 3);
  return m;
}
def main() {
  var tree = build(9, 1);
  var env = new int[8];
  var acc = 0;
  var rep = 0;
  while (rep < 10) {
    env[rep % 8] = rep * 3 + 1;
    var folded = tree.fold();
    acc = (acc + folded.eval(env) + folded.size()) % 1000003;
    // acc is reduced mod 1000003 per pass; the environment dump is a
    // cold internal-error path that never runs.
    if (acc > 1000003) {
      print(900010);
      print(rep);
      print(acc);
      var e2 = 0;
      while (e2 < env.length) {
        print(env[e2]);
        e2 = e2 + 1;
      }
    }
    rep = rep + 1;
  }
  print(acc);
}
)",
                    12});

  return Result;
}
