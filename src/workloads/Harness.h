//===- workloads/Harness.h - Benchmark measurement harness -----------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement procedure shared by every bench binary, following the
/// paper's methodology (§V): run each workload for a fixed number of
/// repetitions inside one VM instance (hotness and compiled code persist
/// across repetitions), record per-repetition effective cycles (compiled
/// cycles scaled by i-cache pressure), and report the steady-state value
/// as the mean of the last 40% (at most 20) repetitions. Our substrate is
/// deterministic, so the paper's 5-instance mean/stddev collapses to a
/// single exact value (stddev 0); the harness still exposes the vector of
/// per-iteration samples for warmup curves.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_WORKLOADS_HARNESS_H
#define INCLINE_WORKLOADS_HARNESS_H

#include "jit/JitRuntime.h"
#include "workloads/Workloads.h"

#include <string>
#include <vector>

namespace incline::workloads {

/// Harness knobs.
struct RunConfig {
  jit::JitConfig Jit;
  /// Repetitions; 0 = the workload's own default.
  int Iterations = 0;

  RunConfig() { Jit.CompileThreshold = 10; }
};

/// Result of running one workload under one compiler.
struct RunResult {
  std::string Workload;
  std::string CompilerName;
  /// Effective cycles of each repetition (warmup curve).
  std::vector<double> IterationCycles;
  /// The paper's reported number: steady-state mean (last 40%, max 20).
  double SteadyStateCycles = 0;
  /// Total |ir| of installed compiled code at the end of the run.
  uint64_t InstalledCodeSize = 0;
  /// Compilations performed, in arrival order. The harness drains
  /// background compilations before snapshotting, so Async runs report
  /// every compile that was still in flight at the end of the run.
  std::vector<jit::CompilationRecord> Compilations;
  /// Runtime counters, snapshotted *before* the settling drain so
  /// MutatorStallNanos covers only stalls the running program observed
  /// (bench/compiletime_async compares it across modes).
  jit::JitRuntimeStats JitStats;
  /// Program output of the final repetition (for cross-config validation).
  std::string Output;
  /// True when every repetition completed without a trap.
  bool Ok = true;
  std::string Error;
};

/// Runs \p W to steady state under \p Compiler.
RunResult runWorkload(const Workload &W, jit::Compiler &Compiler,
                      const RunConfig &Config = RunConfig());

/// Speedup of \p Measured over \p Baseline (baseline/measured: >1 means
/// \p Measured is faster).
double speedupOf(const RunResult &Baseline, const RunResult &Measured);

} // namespace incline::workloads

#endif // INCLINE_WORKLOADS_HARNESS_H
