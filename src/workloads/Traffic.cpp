//===- workloads/Traffic.cpp --------------------------------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Traffic.h"

#include "frontend/Compiler.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace incline;
using namespace incline::workloads;

namespace {

/// splitmix64 finalizer: the same schedule-hash idiom the chaos fuzzer
/// uses — every draw is a pure function of (seed, draw index), so a traffic
/// run is reproducible from its config alone.
uint64_t mix(uint64_t Seed, uint64_t N) {
  uint64_t Z = Seed + 0x9e3779b97f4a7c15ull * (N + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

uint64_t fnv1aAppend(uint64_t Hash, std::string_view Data) {
  for (unsigned char C : Data) {
    Hash ^= C;
    Hash *= 1099511628211ull;
  }
  return Hash;
}

} // namespace

std::string incline::workloads::buildTrafficProgram(unsigned NumHandlers,
                                                    unsigned NumHostile) {
  // One shared operator hierarchy; every handler picks a tenant-specific
  // mix, so receiver histograms (and therefore speculation decisions)
  // differ per tenant while the code shape stays comparable.
  std::string Src = R"(class Op {
  def apply(a: int, b: int): int { return a + b; }
}
class OpAdd extends Op {
  def apply(a: int, b: int): int { return a + b + 1; }
}
class OpMul extends Op {
  def apply(a: int, b: int): int { return a * 3 + b % 17; }
}
class OpSub extends Op {
  def apply(a: int, b: int): int { return a - b + 5; }
}
class OpMix extends Op {
  def apply(a: int, b: int): int { return a % 8191 + b * 2; }
}
def main() { print(0); }
)";
  static const char *OpClasses[] = {"Op", "OpAdd", "OpMul", "OpSub", "OpMix"};
  for (unsigned T = 0; T < NumHandlers; ++T) {
    unsigned Trip = 24 + (T * 7) % 40;
    const char *C0 = OpClasses[(T * 31 + 0) % 5];
    const char *C1 = OpClasses[(T * 31 + 17) % 5];
    const char *C2 = OpClasses[(T * 31 + 34) % 5];
    // Each handler carries a per-request validation branch that can never
    // fire (`i % 3` is always a valid ops index): realistic server
    // handlers are full of such cold error paths, and they are exactly
    // what cold-branch pruning strips from the installed code.
    Src += formatString(
        "def handler%u(): int {\n"
        "  var ops = new Op[3];\n"
        "  ops[0] = new %s();\n"
        "  ops[1] = new %s();\n"
        "  ops[2] = new %s();\n"
        "  var acc = %u;\n"
        "  var i = 0;\n"
        "  while (i < %u) {\n"
        "    var sel = i %% 3;\n"
        "    if (sel > 2) {\n"
        "      print(%u);\n"
        "      print(i);\n"
        "      print(acc);\n"
        "      print(acc %% 3);\n"
        "      print(acc %% 5);\n"
        "      print(acc %% 7);\n"
        "      print(acc %% 11);\n"
        "      print(acc %% 13);\n"
        "    }\n"
        "    acc = ops[sel].apply(acc, i + %u);\n"
        "    i = i + 1;\n"
        "  }\n"
        "  print(acc);\n"
        "  return acc;\n"
        "}\n",
        T, C0, C1, C2, T % 13, Trip, 910000 + T, T % 5);
  }
  // Hostile tenants: each handler loops over its own helper chain — one
  // virtual apply per level, every level a distinct function — so the
  // inliner's trial expansion walks a deep call tree per compile while one
  // *execution* of the chain stays cheap. This is the deadline-blowing
  // workload of the supervised-compilation bench: without a deadline the
  // compile is merely slow; with one it must bail out cleanly and step the
  // handler down the degradation ladder.
  const unsigned HostileDepth = 14;
  for (unsigned T = 0; T < NumHostile; ++T) {
    for (unsigned D = HostileDepth; D-- > 0;) {
      const char *Cls = OpClasses[(T * 13 + D * 7) % 5];
      if (D + 1 == HostileDepth)
        Src += formatString("def deep%u_%u(a: int): int {\n"
                            "  var op: Op = new %s();\n"
                            "  return op.apply(a, %u);\n"
                            "}\n",
                            T, D, Cls, D + T % 7);
      else
        Src += formatString("def deep%u_%u(a: int): int {\n"
                            "  var op: Op = new %s();\n"
                            "  return deep%u_%u(op.apply(a, %u)) %% 65521;\n"
                            "}\n",
                            T, D, Cls, T, D + 1, D + T % 7);
    }
    Src += formatString("def hostile%u(): int {\n"
                        "  var acc = %u;\n"
                        "  var i = 0;\n"
                        "  while (i < %u) {\n"
                        "    acc = deep%u_0(acc + i);\n"
                        "    i = i + 1;\n"
                        "  }\n"
                        "  print(acc);\n"
                        "  return acc;\n"
                        "}\n",
                        T, T % 11, 16 + (T * 5) % 24, T);
  }
  return Src;
}

double incline::workloads::latencyPercentile(
    const std::vector<double> &Samples, double P) {
  if (Samples.empty())
    return 0;
  std::vector<double> Sorted = Samples;
  std::sort(Sorted.begin(), Sorted.end());
  // Nearest-rank: smallest sample >= P percent of the distribution.
  size_t Rank = static_cast<size_t>(
      std::ceil(P / 100.0 * static_cast<double>(Sorted.size())));
  if (Rank == 0)
    Rank = 1;
  if (Rank > Sorted.size())
    Rank = Sorted.size();
  return Sorted[Rank - 1];
}

TrafficResult incline::workloads::runTraffic(jit::Compiler &Compiler,
                                             const TrafficConfig &Config) {
  TrafficResult Result;
  unsigned ChurnEvents =
      Config.ChurnInterval != 0 ? Config.Requests / Config.ChurnInterval : 0;
  unsigned NumHandlers = Config.Tenants + ChurnEvents;
  Result.Handlers = NumHandlers;

  frontend::CompileResult Compiled = frontend::compileProgram(
      buildTrafficProgram(NumHandlers, Config.HostileTenants));
  if (!Compiled.succeeded()) {
    Result.Ok = false;
    Result.Error = "frontend: " + frontend::renderDiagnostics(Compiled.Diags);
    return Result;
  }
  jit::JitRuntime Runtime(*Compiled.Mod, Compiler, Config.Jit);

  // Active tenant pool; churn replaces one slot with a fresh handler that
  // has never executed (cold code, cold profiles — compilation never ends).
  std::vector<unsigned> Pool(std::max(1u, Config.Tenants));
  std::iota(Pool.begin(), Pool.end(), 0u);
  unsigned NextFresh = Config.Tenants;

  uint64_t Digest = 1469598103934665603ull;
  uint64_t Draws = 0;
  auto Draw = [&] { return mix(Config.Seed, ++Draws); };

  for (unsigned I = 0; I < Config.Requests; ++I) {
    if (Config.ChurnInterval != 0 && I != 0 &&
        I % Config.ChurnInterval == 0 && NextFresh < NumHandlers)
      Pool[Draw() % Pool.size()] = NextFresh++;

    // Hot window: a contiguous slot range that shifts every phase. The
    // remaining draws hit a uniform pool slot — the cold tail.
    unsigned PhaseBase = Config.PhaseLength != 0
                             ? static_cast<unsigned>(
                                   (I / Config.PhaseLength) * Config.HotSetSize)
                             : 0;
    // Hostile draw first (guarded, so configs without hostile tenants keep
    // their exact pre-existing schedule and digest).
    std::string Symbol;
    if (Config.HostileTenants != 0 &&
        Draw() % 100 < Config.HostileSharePercent) {
      Symbol = "hostile" + std::to_string(Draw() % Config.HostileTenants);
      ++Result.HostileRequests;
    } else {
      unsigned Slot;
      if (Config.HotSetSize != 0 && Draw() % 100 < Config.HotSharePercent)
        Slot = (PhaseBase + Draw() % Config.HotSetSize) % Pool.size();
      else
        Slot = Draw() % Pool.size();
      unsigned Tenant = Pool[Slot];
      Symbol = "handler" + std::to_string(Tenant);
    }

    uint64_t StallBefore = Runtime.stats().MutatorStallNanos;
    interp::ExecResult R = Runtime.run(Symbol);
    if (!R.ok()) {
      Result.Ok = false;
      Result.Error = Symbol + ": " + R.TrapMessage;
      return Result;
    }
    // Latency = deterministic effective cycles of the request plus the
    // compile stall the mutator observed serving it (1 ns ≡ 1 cycle — the
    // only wall-clock term, zero in pure-interpreted and Async fast paths).
    uint64_t StallDelta = Runtime.stats().MutatorStallNanos - StallBefore;
    double Latency =
        Runtime.effectiveCycles(R) + static_cast<double>(StallDelta);
    Result.LatencyCycles.push_back(Latency);
    Result.TotalCycles += Latency;

    Digest = fnv1aAppend(Digest, Symbol);
    Digest = fnv1aAppend(Digest, R.Output);
  }

  Result.Requests = Config.Requests;
  Result.OutputDigest = Digest;
  Result.P50 = latencyPercentile(Result.LatencyCycles, 50);
  Result.P99 = latencyPercentile(Result.LatencyCycles, 99);
  Result.P999 = latencyPercentile(Result.LatencyCycles, 99.9);
  Result.MeanCycles = Result.LatencyCycles.empty()
                          ? 0
                          : Result.TotalCycles /
                                static_cast<double>(Result.LatencyCycles.size());
  Result.Throughput =
      Result.TotalCycles > 0
          ? static_cast<double>(Result.Requests) / (Result.TotalCycles / 1e6)
          : 0;
  // Drain first, then snapshot both stat blocks together: in Async mode
  // late publications land during the drain, and the JIT and cache stats
  // must describe the same final state.
  Runtime.drainCompilations();
  Result.JitStats = Runtime.stats();
  Result.CacheStats = Runtime.codeCacheStats();
  Result.PeakCodeBytes = Result.CacheStats.PeakLiveBytes;
  return Result;
}
