//===- workloads/Workloads.cpp - Suite registry -----------------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/WorkloadsInternal.h"

using namespace incline::workloads;

const std::vector<Workload> &incline::workloads::allWorkloads() {
  static const std::vector<Workload> All = [] {
    std::vector<Workload> Result;
    for (auto &&Group :
         {dacapoWorkloads(), scalaDacapoWorkloads(),
          sparkAndOtherWorkloads()})
      for (auto &W : Group)
        Result.push_back(std::move(W));
    return Result;
  }();
  return All;
}

const Workload *incline::workloads::findWorkload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}
