//===- workloads/Traffic.h - Multi-tenant traffic harness ------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server-scale counterpart of the steady-state harness: instead of one
/// workload iterated to convergence, thousands of independent request
/// streams ("tenants", each with its own handler method and receiver mix)
/// multiplex over ONE JitRuntime — one profile table, one code cache, one
/// shared compile-memoization cache — the way a process serving many users
/// does. The request schedule is deterministic (splitmix64 over the seed),
/// and it deliberately exercises what ISSUE 7 calls the server lifecycle:
///
///  * **Hot sets** — most requests target a small rotating window of
///    tenants; the rest are a uniform cold tail, so the runtime always has
///    lukewarm code competing for cache space.
///  * **Phase changes** — every `PhaseLength` requests the hot window
///    shifts, turning yesterday's hot code cold (profile decay and
///    coldest-first eviction are what keep this from accumulating).
///  * **Tenant churn** — every `ChurnInterval` requests one pool slot is
///    replaced by a never-seen tenant, so compilation never stops.
///
/// Per-request latency is effective cycles (the harness's deterministic
/// "wall clock") plus the request's mutator compile-stall nanoseconds at a
/// documented 1 cycle ≡ 1 ns conversion — tail percentiles therefore see
/// both i-cache pressure and compile/deopt/eviction stalls. Output is
/// digested (FNV-1a over every request's printed output) so differential
/// tests can assert bit-equal behaviour across JIT configurations.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_WORKLOADS_TRAFFIC_H
#define INCLINE_WORKLOADS_TRAFFIC_H

#include "jit/JitRuntime.h"

#include <cstdint>
#include <string>
#include <vector>

namespace incline::workloads {

/// Traffic-shape knobs. Defaults give a small but non-trivial run; the
/// bench scales them up, tests scale them down.
struct TrafficConfig {
  jit::JitConfig Jit;
  uint64_t Seed = 1;        ///< Drives the whole request schedule.
  unsigned Tenants = 24;    ///< Active pool size (concurrent tenants).
  unsigned Requests = 1500; ///< Total requests to serve.
  unsigned HotSetSize = 4;  ///< Tenants in the hot window.
  /// Requests between hot-window shifts; 0 = stationary (no phase change).
  unsigned PhaseLength = 0;
  /// Requests between churn events (one pool slot replaced by a fresh,
  /// never-executed tenant); 0 = no churn.
  unsigned ChurnInterval = 0;
  /// Requests (out of 100) served from the hot window; the rest hit a
  /// uniformly random pool tenant (the cold tail).
  unsigned HotSharePercent = 90;
  /// Hostile tenants: handlers whose bodies sit on top of deep helper-call
  /// chains, so one compile explores a large call tree and blows any
  /// reasonable compile deadline. They live outside the churn pool and are
  /// scheduled by HostileSharePercent. 0 disables the scenario (and leaves
  /// the request schedule of existing configs untouched).
  unsigned HostileTenants = 0;
  /// Requests (out of 100) served by a uniformly random hostile tenant
  /// (drawn before the hot/cold split). Only meaningful when
  /// HostileTenants != 0.
  unsigned HostileSharePercent = 10;

  TrafficConfig() { Jit.CompileThreshold = 10; }
};

/// Result of one traffic run.
struct TrafficResult {
  unsigned Requests = 0;
  /// Requests served by hostile (deep-call-tree) tenants.
  unsigned HostileRequests = 0;
  /// Handlers the generated program contains (pool + churn replacements).
  unsigned Handlers = 0;
  /// Per-request latency in effective cycles (+ stall ns at 1 ns ≡ 1 cy),
  /// in request order — the raw material of the percentiles.
  std::vector<double> LatencyCycles;
  double P50 = 0;
  double P99 = 0;
  double P999 = 0;
  double MeanCycles = 0;
  double TotalCycles = 0;
  /// Requests per million effective cycles.
  double Throughput = 0;
  /// FNV-1a over (tenant id, printed output) of every request — the
  /// differential-correctness digest.
  uint64_t OutputDigest = 0;
  /// High-water |ir| of installed code (methods + OSR variants) during the
  /// run — the denominator of the bounded-vs-unbounded footprint claim.
  uint64_t PeakCodeBytes = 0;
  jit::JitRuntimeStats JitStats;
  jit::CodeCacheStats CacheStats;
  bool Ok = true;
  std::string Error;
};

/// MiniOO source with \p NumHandlers tenant handlers (`handler0` ...),
/// each a distinct loop over a tenant-specific mix of virtual operators —
/// distinct code, distinct receiver profiles, comparable cost. When
/// \p NumHostile is nonzero, also emits `hostile0` ... handlers, each a
/// loop over its own deep chain of helper calls (virtual dispatch at every
/// level) — cheap to execute, pathologically expensive to inline.
std::string buildTrafficProgram(unsigned NumHandlers, unsigned NumHostile = 0);

/// Serves `Config.Requests` requests over one runtime. \p Compiler is
/// shared by every compilation in the run (point a TrialCache-backed
/// compiler here to exercise cross-tenant memoization).
TrafficResult runTraffic(jit::Compiler &Compiler, const TrafficConfig &Config);

/// Percentile (0 < P <= 100) by nearest-rank over a copy of \p Samples;
/// 0 for an empty sample.
double latencyPercentile(const std::vector<double> &Samples, double P);

} // namespace incline::workloads

#endif // INCLINE_WORKLOADS_TRAFFIC_H
