//===- workloads/Workloads.h - The benchmark program suite ------------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniOO benchmark suite substituting for the paper's DaCapo,
/// Scala DaCapo, Spark-Perf, Neo4J, Dotty and STMBench7 workloads. Each
/// program mirrors the *inlining-relevant shape* of its namesake: the
/// dominant dispatch pattern (mono/poly/megamorphic), the granularity of
/// hot methods, and the depth of the hot call chains. All workloads are
/// deterministic and print a checksum, which differential tests compare
/// across inliner policies.
///
//===----------------------------------------------------------------------===//

#ifndef INCLINE_WORKLOADS_WORKLOADS_H
#define INCLINE_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace incline::workloads {

/// One benchmark program.
struct Workload {
  std::string Name;        ///< e.g. "factorie"
  std::string Suite;       ///< "dacapo", "scala-dacapo", "spark", "other".
  std::string Description; ///< What shape it stresses.
  std::string Source;      ///< MiniOO program with a `main`.
  int Iterations = 15;     ///< Harness repetitions for steady state.
};

/// The full suite, in a stable order.
const std::vector<Workload> &allWorkloads();

/// Lookup by name; null when unknown.
const Workload *findWorkload(const std::string &Name);

} // namespace incline::workloads

#endif // INCLINE_WORKLOADS_WORKLOADS_H
