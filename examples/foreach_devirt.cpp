//===- examples/foreach_devirt.cpp - The paper's Figure 1 scenario ----------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's motivating example (Fig. 1): a generic
/// `foreach` over a sequence, where the `length`, `get` and `apply` calls
/// are all virtual. The example shows why this is a *cluster*: compiling
/// `log` without inlining `foreach` (and its inner calls) leaves every
/// call polymorphic, while the incremental inliner's deep trials
/// specialize the whole group and erase all dynamic dispatch.
///
/// Build & run:  ./build/examples/foreach_devirt
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "inliner/Compilers.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "support/Casting.h"

#include <cstdio>

using namespace incline;

namespace {

const char *Program = R"(
class Fn { def apply(x: int): int { return x; } }
class Printer extends Fn { def apply(x: int): int { return x * 2 + 1; } }
// A second overrider defeats class-hierarchy analysis: `f.apply(...)`
// inside foreach cannot be devirtualized without knowing the *callsite's*
// argument — which is exactly what deep inlining trials propagate.
class Negate extends Fn { def apply(x: int): int { return 0 - x; } }

class Seq {
  var data: int[];
  def length(): int { return this.data.length; }
  def get(i: int): int { return this.data[i]; }
  def foreach(f: Fn): int {
    var i = 0;
    var acc = 0;
    while (i < this.length()) {
      acc = acc + f.apply(this.get(i));
      i = i + 1;
    }
    return acc;
  }
}

def log(xs: Seq): int {
  return xs.foreach(new Printer());
}
def checksum(xs: Seq): int {
  return xs.foreach(new Negate());
}

def main() {
  var s = new Seq();
  s.data = new int[32];
  var i = 0;
  while (i < 32) { s.data[i] = i; i = i + 1; }
  var total = 0;
  var rep = 0;
  while (rep < 10) {
    total = total + log(s) + checksum(s);
    rep = rep + 1;
  }
  print(total);
}
)";

size_t countVirtualCalls(const ir::Function &F) {
  size_t Count = 0;
  for (const auto &BB : F.blocks())
    for (const auto &Inst : BB->instructions())
      if (isa<ir::VirtualCallInst>(Inst.get()))
        ++Count;
  return Count;
}

size_t countDirectCalls(const ir::Function &F) {
  size_t Count = 0;
  for (const auto &BB : F.blocks())
    for (const auto &Inst : BB->instructions())
      if (isa<ir::CallInst>(Inst.get()))
        ++Count;
  return Count;
}

std::unique_ptr<ir::Function> compileLog(jit::Compiler &Compiler,
                                         const ir::Module &M,
                                         const profile::ProfileTable &P) {
  jit::CompileStats Stats;
  return Compiler.compile(*M.function("log"), M, P, Stats);
}

} // namespace

int main() {
  std::unique_ptr<ir::Module> M = frontend::compileOrDie(Program);
  profile::ProfileTable Profiles;
  interp::runMain(*M, &Profiles);

  std::printf("Virtual callsites in the source methods:\n");
  for (const char *Name : {"log", "Seq.foreach", "Seq.get", "Seq.length"})
    std::printf("  %-12s %zu\n", Name,
                countVirtualCalls(*M->function(Name)));

  // The greedy baseline: inlines by frequency/size, without trials. The
  // foreach body lands in log, but its inner calls stay virtual unless
  // their benefit is visible up front.
  inliner::GreedyCompiler Greedy;
  std::unique_ptr<ir::Function> GreedyLog = compileLog(Greedy, *M, Profiles);

  // The incremental inliner: explores the call tree, specializes foreach
  // for the exact Printer argument (deep inlining trials), sees
  // length/get/apply devirtualize, and inlines the whole cluster.
  inliner::IncrementalCompiler Incremental;
  std::unique_ptr<ir::Function> IncLog =
      compileLog(Incremental, *M, Profiles);

  std::printf("\ncompiled `log`, greedy:      |ir| = %4zu, calls remaining: "
              "%zu virtual + %zu direct (per-element overhead stays)\n",
              GreedyLog->instructionCount(), countVirtualCalls(*GreedyLog),
              countDirectCalls(*GreedyLog));
  std::printf("compiled `log`, incremental: |ir| = %4zu, calls remaining: "
              "%zu virtual + %zu direct\n\n",
              IncLog->instructionCount(), countVirtualCalls(*IncLog),
              countDirectCalls(*IncLog));

  std::printf("--- `log` as compiled by the incremental inliner ---\n%s\n",
              ir::printFunction(*IncLog).c_str());
  std::printf("Every length/get/apply dispatch is gone: the loop reads the "
              "array\nand applies Printer.apply's body directly.\n");
  return 0;
}
