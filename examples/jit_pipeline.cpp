//===- examples/jit_pipeline.cpp - Tiered JIT execution demo ----------------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the full tiered runtime on one benchmark workload: methods start
/// interpreted (and profiled), get compiled as they cross the hotness
/// threshold, and the per-iteration effective cycles show the warmup
/// curve. Run with an optional workload name:
///
///   ./build/examples/jit_pipeline [workload]     (default: foreach)
///
//===----------------------------------------------------------------------===//

#include "inliner/Compilers.h"
#include "workloads/Harness.h"

#include <cstdio>
#include <string>

using namespace incline;
using namespace incline::workloads;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "foreach";
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'; available:\n",
                 Name.c_str());
    for (const Workload &Available : allWorkloads())
      std::fprintf(stderr, "  %-12s (%s) %s\n", Available.Name.c_str(),
                   Available.Suite.c_str(), Available.Description.c_str());
    return 1;
  }

  std::printf("workload: %s — %s\n\n", W->Name.c_str(),
              W->Description.c_str());

  inliner::IncrementalCompiler Incremental;
  inliner::GreedyCompiler Greedy;
  jit::Compiler *Compilers[] = {&Incremental, &Greedy};

  RunConfig Config;
  Config.Iterations = 10;
  Config.Jit.CompileThreshold = 5;

  for (jit::Compiler *Compiler : Compilers) {
    RunResult Result = runWorkload(*W, *Compiler, Config);
    if (!Result.Ok) {
      std::fprintf(stderr, "%s failed: %s\n", Compiler->name().c_str(),
                   Result.Error.c_str());
      return 1;
    }
    std::printf("=== %s ===\n", Compiler->name().c_str());
    std::printf("iteration cycles:");
    for (double Cycles : Result.IterationCycles)
      std::printf(" %.0f", Cycles);
    std::printf("\nsteady state: %.0f cycles, installed code: %llu nodes\n",
                Result.SteadyStateCycles,
                static_cast<unsigned long long>(Result.InstalledCodeSize));
    std::printf("compilations (in arrival order):\n");
    for (const jit::CompilationRecord &Record : Result.Compilations)
      std::printf("  #%llu %-22s size=%-5llu inlined=%-3llu rounds=%llu "
                  "explored=%llu\n",
                  static_cast<unsigned long long>(Record.CompileIndex),
                  Record.Symbol.c_str(),
                  static_cast<unsigned long long>(Record.Stats.CodeSize),
                  static_cast<unsigned long long>(
                      Record.Stats.InlinedCallsites),
                  static_cast<unsigned long long>(Record.Stats.Rounds),
                  static_cast<unsigned long long>(
                      Record.Stats.ExploredNodes));
    std::printf("program output: %s\n", Result.Output.c_str());
  }
  return 0;
}
