//===- examples/quickstart.cpp - Five-minute tour of the library -----------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smallest end-to-end use of the public API:
///
///   1. compile a MiniOO program to SSA IR,
///   2. run it in the profiling interpreter,
///   3. compile its hot method with the incremental inliner,
///   4. show the method before and after, plus the compile stats.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "inliner/Compilers.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"

#include <cstdio>

using namespace incline;

namespace {

const char *Program = R"(
class Shape { def area(): int { return 0; } }
class Square extends Shape {
  var side: int;
  def area(): int { return this.side * this.side; }
}

def totalArea(shapes: Shape[]): int {
  var i = 0;
  var total = 0;
  while (i < shapes.length) {
    total = total + shapes[i].area();
    i = i + 1;
  }
  return total;
}

def main() {
  var shapes = new Shape[40];
  var i = 0;
  while (i < 40) {
    var s = new Square();
    s.side = i % 7;
    shapes[i] = s;
    i = i + 1;
  }
  print(totalArea(shapes));
}
)";

} // namespace

int main() {
  // 1. MiniOO source -> verified SSA module.
  std::unique_ptr<ir::Module> M = frontend::compileOrDie(Program);
  std::printf("Compiled %zu functions.\n\n", M->numFunctions());

  // 2. One profiling run: records branch probabilities, receiver classes
  //    and invocation counts — the inliner's fuel.
  profile::ProfileTable Profiles;
  interp::ExecResult Run = interp::runMain(*M, &Profiles);
  std::printf("Interpreted run: output=%s  cycles=%llu\n\n",
              Run.Output.c_str(),
              static_cast<unsigned long long>(Run.totalCycles()));

  // 3. Compile the hot method with the paper's incremental inliner.
  const ir::Function *Source = M->function("totalArea");
  std::printf("--- totalArea before ---\n%s\n",
              ir::printFunction(*Source).c_str());

  inliner::IncrementalCompiler Compiler;
  jit::CompileStats Stats;
  std::unique_ptr<ir::Function> Compiled =
      Compiler.compile(*Source, *M, Profiles, Stats);

  // 4. The virtual area() call became a typeswitch-free direct inline:
  //    the receiver profile is monomorphic (only Square observed).
  std::printf("--- totalArea after ---\n%s\n",
              ir::printFunction(*Compiled).c_str());
  std::printf("inlined callsites: %llu\nexplored call-tree nodes: %llu\n"
              "optimizations triggered: %llu\nrounds: %llu\n",
              static_cast<unsigned long long>(Stats.InlinedCallsites),
              static_cast<unsigned long long>(Stats.ExploredNodes),
              static_cast<unsigned long long>(Stats.OptsTriggered),
              static_cast<unsigned long long>(Stats.Rounds));
  return 0;
}
