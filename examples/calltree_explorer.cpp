//===- examples/calltree_explorer.cpp - Watch the algorithm think -----------===//
//
// Part of the Incline project (CGO'19 incremental inlining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A visualization tool for the incremental inlining algorithm: builds the
/// call tree for one method of one workload and steps through the
/// expand / analyze / inline rounds, dumping the tree (node kinds C/E/D/
/// G/P, frequencies, N_s, cluster membership) after each phase — the same
/// information as the paper's Figures 2-4.
///
///   ./build/examples/calltree_explorer [workload] [method]
///   (defaults: foreach Seq.foreach)
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "inliner/ClusterAnalysis.h"
#include "inliner/ExpansionPhase.h"
#include "inliner/InliningPhase.h"
#include "interp/Interpreter.h"
#include "ir/IRCloner.h"
#include "ir/IRPrinter.h"
#include "opt/Canonicalizer.h"
#include "opt/DCE.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <string>

using namespace incline;
using namespace incline::inliner;

int main(int argc, char **argv) {
  std::string WorkloadName = argc > 1 ? argv[1] : "foreach";
  std::string Method = argc > 2 ? argv[2] : "Seq.foreach";

  const workloads::Workload *W = workloads::findWorkload(WorkloadName);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'\n", WorkloadName.c_str());
    return 1;
  }
  std::unique_ptr<ir::Module> M = frontend::compileOrDie(W->Source);
  if (!M->function(Method)) {
    std::fprintf(stderr, "unknown method '%s'; module has:\n",
                 Method.c_str());
    for (const auto &[Name, F] : M->functions())
      std::fprintf(stderr, "  %s\n", Name.c_str());
    return 1;
  }

  profile::ProfileTable Profiles;
  interp::runMain(*M, &Profiles);

  InlinerConfig Config;
  CallTree Tree(Config, *M, Profiles);
  ir::ClonedFunction Clone = ir::cloneFunction(*M->function(Method), Method);
  opt::canonicalize(*Clone.F, *M);
  Tree.buildRoot(std::move(Clone.F), Method);
  ExpansionPhase Expansion(Config, Tree);

  std::printf("root method: %s  |ir| = %zu\n", Method.c_str(),
              Tree.root()->Body->instructionCount());
  std::printf("\n--- initial call tree ---\n%s",
              Tree.root()->dump().c_str());

  for (int Round = 1; Round <= 6; ++Round) {
    size_t Expanded = Expansion.run();
    analyzeTree(Config, Tree);
    std::printf("\n===== round %d: expanded %zu cutoffs =====\n", Round,
                Expanded);
    std::printf("S_ir(root)=%zu  S_c(root)=%zu  N_c(root)=%zu\n",
                Tree.root()->subtreeIrSize(), Tree.root()->cutoffSize(),
                Tree.root()->cutoffCount());
    std::printf("%s", Tree.root()->dump().c_str());

    std::printf("cluster admission (Eq.12):\n");
    for (const auto &Child : Tree.root()->Children) {
      if (Child->Kind != CallNodeKind::Expanded &&
          Child->Kind != CallNodeKind::Polymorphic)
        continue;
      std::printf("  %-18s ratio=%.4f members=%zu  -> %s\n",
                  Child->CalleeSymbol.empty() ? Child->MethodName.c_str()
                                              : Child->CalleeSymbol.c_str(),
                  Child->Tuple.ratio(), clusterMembers(*Child).size(),
                  canInlineCluster(Config, *Tree.root(), *Child)
                      ? "inline"
                      : "keep the call");
    }

    InlinePhaseStats Inlined = runInliningPhase(Config, Tree, *M);
    std::printf("inlined %zu clusters (%zu callsites, %zu typeswitches)\n",
                Inlined.ClustersInlined, Inlined.CallsitesInlined,
                Inlined.TypeSwitchesEmitted);
    if (Inlined.ClustersInlined > 0) {
      opt::canonicalize(*Tree.root()->Body, *M);
      opt::eliminateDeadCode(*Tree.root()->Body);
      Tree.reconcileRoot();
    }
    if (Expanded == 0 && Inlined.ClustersInlined == 0) {
      std::printf("\nfixpoint reached.\n");
      break;
    }
  }

  std::printf("\n--- final root method (|ir| = %zu) ---\n%s",
              Tree.root()->Body->instructionCount(),
              ir::printFunction(*Tree.root()->Body).c_str());
  return 0;
}
